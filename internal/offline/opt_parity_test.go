package offline

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// naiveOPT is the reference dynamic program the dense parallel solver
// replaced: per-round map-based access memoisation and an O(states×masks)
// minimisation per round. It returns the DP objective and the chosen
// schedule.
func naiveOPT(env *sim.Env, seq *workload.Sequence, k int) (float64, []core.Vector, bool) {
	n := env.Graph.N()
	states := core.EnumerateVectors(n, k, 0)
	rounds := seq.Len()
	if rounds == 0 {
		return 0, nil, true
	}
	occOf := make([]uint64, len(states))
	actOf := make([]uint64, len(states))
	runOf := make([]float64, len(states))
	for i, st := range states {
		occOf[i] = st.OccupiedMask()
		actOf[i] = st.ActiveMask()
		runOf[i] = st.RunCost(env.Costs)
	}
	maskIndex := make(map[uint64]int)
	var masks []uint64
	maskOf := make([]int, len(states))
	for i, m := range occOf {
		idx, ok := maskIndex[m]
		if !ok {
			idx = len(masks)
			maskIndex[m] = idx
			masks = append(masks, m)
		}
		maskOf[i] = idx
	}
	placementOf := make(map[uint64]core.Placement)
	for i, st := range states {
		if _, ok := placementOf[actOf[i]]; !ok {
			placementOf[actOf[i]] = st.ActivePlacement()
		}
	}
	accessFor := func(t int, cache map[uint64]float64, active uint64) float64 {
		if v, ok := cache[active]; ok {
			return v
		}
		ac := env.Eval.Access(placementOf[active], seq.Demand(t))
		v := math.Inf(1)
		if !ac.Infinite() {
			v = ac.Total()
		}
		cache[active] = v
		return v
	}
	start := core.NewVector(n)
	for _, v := range env.Start {
		start[v] = core.StateActive
	}
	startOcc := start.OccupiedMask()

	prev := make([]float64, len(states))
	next := make([]float64, len(states))
	parent := make([][]int32, rounds)
	cache := make(map[uint64]float64)
	parent[0] = make([]int32, len(states))
	for i := range states {
		prev[i] = core.TransitionCostMasks(env.Costs, startOcc, occOf[i]) +
			runOf[i] + accessFor(0, cache, actOf[i])
		parent[0][i] = -1
	}
	bestByMask := make([]float64, len(masks))
	argByMask := make([]int32, len(masks))
	for t := 1; t < rounds; t++ {
		for mi := range bestByMask {
			bestByMask[mi] = math.Inf(1)
			argByMask[mi] = -1
		}
		for i := range states {
			mi := maskOf[i]
			if prev[i] < bestByMask[mi] {
				bestByMask[mi] = prev[i]
				argByMask[mi] = int32(i)
			}
		}
		cache = make(map[uint64]float64)
		parent[t] = make([]int32, len(states))
		for i := range states {
			best, arg := math.Inf(1), int32(-1)
			for mi, frm := range masks {
				if math.IsInf(bestByMask[mi], 1) {
					continue
				}
				c := bestByMask[mi] + core.TransitionCostMasks(env.Costs, frm, occOf[i])
				if c < best {
					best, arg = c, argByMask[mi]
				}
			}
			next[i] = best + runOf[i] + accessFor(t, cache, actOf[i])
			parent[t][i] = arg
		}
		prev, next = next, prev
	}
	bestFinal, argFinal := math.Inf(1), -1
	for i, c := range prev {
		if c < bestFinal {
			bestFinal, argFinal = c, i
		}
	}
	if argFinal < 0 {
		return 0, nil, false
	}
	schedule := make([]core.Vector, rounds)
	cur := int32(argFinal)
	for t := rounds - 1; t >= 0; t-- {
		schedule[t] = states[cur]
		cur = parent[t][cur]
	}
	return bestFinal, schedule, true
}

func randomOPTInstance(t *testing.T, rng *rand.Rand) (*sim.Env, *workload.Sequence, int) {
	t.Helper()
	n := 3 + rng.Intn(4)
	k := 1 + rng.Intn(n)
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 0.5+2*rng.Float64(), 1)
	}
	if n > 2 && rng.Intn(2) == 0 {
		g.MustAddEdge(0, n-1, 0.5+2*rng.Float64(), 1) // close the ring
	}
	params := cost.DefaultParams()
	if rng.Intn(2) == 0 {
		params = cost.InvertedParams()
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, params,
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: k})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 4 + rng.Intn(20)
	demands := make([]cost.Demand, rounds)
	for t2 := range demands {
		list := make([]int, rng.Intn(6))
		for i := range list {
			list[i] = rng.Intn(n)
		}
		demands[t2] = cost.DemandFromList(list)
	}
	return env, workload.NewSequence("random", demands), k
}

// TestOPTMatchesNaiveDP pins the dense parallel solver to the reference
// dynamic program: the objective must be bit-identical and the chosen
// schedule the same configuration path.
func TestOPTMatchesNaiveDP(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	for trial := 0; trial < 25; trial++ {
		env, seq, k := randomOPTInstance(t, rng)
		opt := NewOPT(seq)
		if err := opt.Reset(env); err != nil {
			t.Fatal(err)
		}
		want, wantSched, ok := naiveOPT(env, seq, k)
		if !ok {
			t.Fatal("naive DP found no schedule")
		}
		if opt.PlannedCost() != want {
			t.Fatalf("trial %d: planned = %v, naive = %v", trial, opt.PlannedCost(), want)
		}
		got := opt.Schedule()
		if len(got) != len(wantSched) {
			t.Fatalf("trial %d: schedule length %d, naive %d", trial, len(got), len(wantSched))
		}
		for t2 := range got {
			if got[t2].String() != wantSched[t2].String() {
				t.Fatalf("trial %d round %d: schedule %v, naive %v",
					trial, t2, got[t2], wantSched[t2])
			}
		}
	}
}

// TestOPTStepAllocationFree pins the per-round DP kernel to zero
// steady-state allocations (single-worker path; the parallel path only
// adds goroutine bookkeeping). Race instrumentation allocates inside the
// kernel, so the pin only holds without -race.
func TestOPTStepAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates in the step kernel")
	}
	env := lineEnv(t, 5, 3, cost.DefaultParams())
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 10}, 50)
	if err != nil {
		t.Fatal(err)
	}
	states := core.EnumerateVectors(env.Graph.N(), 3, 0)
	s := newOptSolver(env, seq, states, 1)
	if err := s.solve(); err != nil { // warm the access-session pool
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() { s.step(1) }); avg != 0 {
		t.Errorf("optSolver.step: %v allocs/op, want 0", avg)
	}
}

// TestOPTDeterministicAcrossWorkerCounts checks the solver returns the
// same objective and schedule regardless of parallel fan-out.
func TestOPTDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(887))
	for trial := 0; trial < 10; trial++ {
		env, seq, k := randomOPTInstance(t, rng)
		states := core.EnumerateVectors(env.Graph.N(), k, 0)
		s1 := newOptSolver(env, seq, states, 1)
		if err := s1.solve(); err != nil {
			t.Fatal(err)
		}
		sN := newOptSolver(env, seq, states, runtime.GOMAXPROCS(0))
		if err := sN.solve(); err != nil {
			t.Fatal(err)
		}
		if s1.planned != sN.planned {
			t.Fatalf("trial %d: serial planned %v, parallel %v", trial, s1.planned, sN.planned)
		}
		for t2 := range s1.scheduleOut {
			if s1.scheduleOut[t2].String() != sN.scheduleOut[t2].String() {
				t.Fatalf("trial %d round %d: schedules differ", trial, t2)
			}
		}
	}
}
