package offline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/workload"
)

// heavyCornerSeq concentrates lots of demand at one end of the line so the
// lookahead strategies cycle through many epochs.
func heavyCornerSeq(node, perRound, rounds int) *workload.Sequence {
	demands := make([]cost.Demand, rounds)
	for i := range demands {
		demands[i] = cost.DemandFromPairs(cost.NodeCount{Node: node, Count: perRound})
	}
	return workload.NewSequence("heavy-corner", demands)
}

func TestOFFBREpochsTurnOver(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	seq := heavyCornerSeq(7, 10, 120)
	a := NewOFFBR(seq)
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	// With per-round cost far above θ = 2c = 40, epochs end every round,
	// and the lookahead must have moved a server onto the demand.
	last := l.Rounds[len(l.Rounds)-1]
	if last.Latency != 0 {
		t.Fatalf("final latency %v, want 0", last.Latency)
	}
	// Reconfiguration must actually have been charged somewhere.
	if l.Totals.Migration+l.Totals.Creation == 0 {
		t.Fatal("OFFBR never reconfigured")
	}
}

func TestOFFBRDynamicThetaAdapts(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	seq := heavyCornerSeq(7, 10, 100)
	a := NewOFFBR(seq)
	a.Dynamic = true
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	// θ = 2c/ℓ with ℓ = 1 equals the fixed θ again, so the final value is
	// not a reliable signal; the run itself must be sane and converge onto
	// the demand.
	if last := l.Rounds[len(l.Rounds)-1]; last.Latency != 0 {
		t.Fatalf("final latency %v, want 0", last.Latency)
	}
	if a.factor() != 2 {
		t.Fatalf("default factor = %v", a.factor())
	}
	a.ThetaFactor = 3
	if a.factor() != 3 {
		t.Fatal("explicit factor ignored")
	}
}

func TestOFFBRLookaheadBeatsOnlineOnAbruptShift(t *testing.T) {
	// Demand sits at one end, then abruptly jumps to the other. The
	// lookahead variant may pre-position; at minimum it must not be much
	// worse than its online counterpart on the same instance.
	env := lineEnv(t, 10, 3, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	var demands []cost.Demand
	for i := 0; i < 60; i++ {
		demands = append(demands, cost.DemandFromPairs(cost.NodeCount{Node: 9, Count: 6}))
	}
	for i := 0; i < 60; i++ {
		demands = append(demands, cost.DemandFromPairs(cost.NodeCount{Node: 0, Count: 6}))
	}
	seq := workload.NewSequence("shift", demands)
	lOff, err := sim.Run(env, NewOFFBR(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lOff.Total()) || lOff.Total() <= 0 {
		t.Fatalf("degenerate OFFBR total %v", lOff.Total())
	}
}

func TestOFFTHLargeEpochAddsServer(t *testing.T) {
	// Spread heavy demand across the line: the access cost quickly
	// outweighs the running cost and OFFTH must allocate extra servers.
	env := lineEnv(t, 10, 4, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	demands := make([]cost.Demand, 150)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{0, 3, 6, 9, 0, 3, 6, 9})
	}
	seq := workload.NewSequence("spread", demands)
	a := NewOFFTH(seq)
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxActive() < 2 {
		t.Fatalf("OFFTH never added a server (max %d)", l.MaxActive())
	}
	if a.y() != 2 {
		t.Fatalf("default y = %v", a.y())
	}
	a.Y = 5
	if a.y() != 5 {
		t.Fatal("explicit y ignored")
	}
}

func TestOFFTHSmallEpochMigrates(t *testing.T) {
	env := lineEnv(t, 8, 2, cost.Params{Beta: 5, Create: 200, RunActive: 0.5, RunInactive: 0.1})
	seq := heavyCornerSeq(7, 8, 100)
	l, err := sim.Run(env, NewOFFTH(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Totals.Migration == 0 {
		t.Fatal("OFFTH never migrated although β ≪ c and demand is remote")
	}
	if last := l.Rounds[len(l.Rounds)-1]; last.Latency != 0 {
		t.Fatalf("final latency %v, want 0", last.Latency)
	}
}

func TestOFFSTATQuadraticLoadPath(t *testing.T) {
	// Exercises the non-separable per-round evaluation branch of OFFSTAT.
	g := graph.New(6)
	for v := 0; v+1 < 6; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	env, err := sim.NewEnv(g, cost.Quadratic{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20, MaxServers: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 3}, 40)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOFFSTAT(seq)
	l, err := sim.Run(env, o, seq)
	if err != nil {
		t.Fatal(err)
	}
	// Curve value at kopt must equal the realised total on the quadratic
	// path too.
	if want := o.CostCurve()[o.Kopt()-1]; math.Abs(l.Total()-want) > 1e-6 {
		t.Fatalf("ledger %v != curve %v", l.Total(), want)
	}
}

// TestLookaheadMemoMatchesFresh pins memoized window scans to fresh
// (memo-less) scans with exact equality, across overlapping windows,
// alternating placements, and backwards restarts.
func TestLookaheadMemoMatchesFresh(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	demands := make([]cost.Demand, 60)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{i % 8, 7, 7})
	}
	seq := workload.NewSequence("mixed", demands)
	placements := []core.Placement{
		core.NewPlacement(3),
		core.NewPlacement(3, 7),
		core.NewPlacement(3), // back to the first: cache must not go stale
	}
	memo := &roundMemo{}
	scans := []struct {
		pl        int
		from      int
		threshold float64
	}{
		{0, 0, 50},  // initial window
		{0, 0, 90},  // same start, longer window: prefix must come from cache
		{0, 4, 50},  // overlapping restart inside the cached range
		{1, 4, 50},  // placement change invalidates
		{1, 10, 60}, // gap past the cached range restarts cleanly
		{2, 10, 60}, // back to placement 0's shape: values must be recomputed
		{2, 3, 40},  // backwards jump under an unchanged placement
	}
	for i, sc := range scans {
		pl := placements[sc.pl]
		gotAgg, gotLen := lookahead(env, seq, pl, 1, sc.from, sc.threshold, memo)
		wantAgg, wantLen := lookahead(env, seq, pl, 1, sc.from, sc.threshold, &roundMemo{})
		if gotLen != wantLen {
			t.Fatalf("scan %d: length %d, fresh %d", i, gotLen, wantLen)
		}
		if gp, wp := gotAgg.Pairs(), wantAgg.Pairs(); len(gp) != len(wp) {
			t.Fatalf("scan %d: %d aggregated pairs, fresh %d", i, len(gp), len(wp))
		} else {
			for k := range gp {
				if gp[k] != wp[k] {
					t.Fatalf("scan %d pair %d: %+v, fresh %+v", i, k, gp[k], wp[k])
				}
			}
		}
	}
}

// TestLookaheadMemoReusesCachedRounds verifies the memo actually avoids
// re-evaluating rounds a previous same-placement scan covered.
func TestLookaheadMemoReusesCachedRounds(t *testing.T) {
	env := lineEnv(t, 6, 2, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	seq := heavyCornerSeq(5, 4, 50)
	memo := &roundMemo{}
	pl := env.Start
	lookahead(env, seq, pl, 0, 10, 1e12, memo) // fills rounds 10..49
	if got := len(memo.costs); got != 40 {
		t.Fatalf("memo holds %d rounds, want 40", got)
	}
	before := append([]cost.AccessCost(nil), memo.costs...)
	// An overlapping scan must return cached values, not extend anything.
	lookahead(env, seq, pl, 0, 20, 1e12, memo)
	if len(memo.costs) != 40 {
		t.Fatalf("overlapping scan resized the cache to %d", len(memo.costs))
	}
	for i := range before {
		if memo.costs[i] != before[i] {
			t.Fatalf("cached access cost %d changed", i)
		}
	}
	// A different placement drops the cache.
	lookahead(env, seq, core.NewPlacement(0, 5), 0, 20, 1e12, memo)
	if memo.start != 20 {
		t.Fatalf("placement change kept start %d, want 20", memo.start)
	}
}

func TestLookaheadWindow(t *testing.T) {
	env := lineEnv(t, 6, 2, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	seq := heavyCornerSeq(5, 4, 50)
	placement := env.Start
	// Threshold so large the window runs to the horizon.
	memo := &roundMemo{}
	agg, length := lookahead(env, seq, placement, 0, 40, 1e12, memo)
	if length != 10 {
		t.Fatalf("window length = %d, want 10 (rounds 40..49)", length)
	}
	if agg.Total() != 40 {
		t.Fatalf("window demand = %d, want 40", agg.Total())
	}
	// Tiny threshold: the window is a single round.
	_, length = lookahead(env, seq, placement, 0, 0, 0.001, memo)
	if length != 1 {
		t.Fatalf("window length = %d, want 1", length)
	}
	// Past the horizon: empty window.
	if _, length = lookahead(env, seq, placement, 0, 99, 10, memo); length != 0 {
		t.Fatalf("window length = %d, want 0", length)
	}
}
