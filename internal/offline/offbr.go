package offline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OFFBR is the offline adaption of ONBR from Section IV-B: it keeps ONBR's
// epoch structure (an epoch ends when the accumulated cost reaches θ) but,
// "rather than switching to the configuration of lowest cost w.r.t. the
// passed epoch, we switch to the configuration of lowest cost in the
// upcoming epoch". The upcoming epoch is the maximal window over which the
// current configuration would accumulate at most θ — the horizon the next
// online epoch would span if the configuration were kept.
type OFFBR struct {
	seq *workload.Sequence
	// Dynamic selects the θ = 2c/ℓ variant, mirroring ONBR.
	Dynamic bool
	// ThetaFactor scales the threshold θ = ThetaFactor · c; zero means 2.
	ThetaFactor float64

	env        *sim.Env
	pool       *core.Pool
	theta      float64
	accum      float64
	epochStart int
	memo       roundMemo
}

// NewOFFBR returns the fixed-threshold offline best-response strategy.
func NewOFFBR(seq *workload.Sequence) *OFFBR { return &OFFBR{seq: seq} }

// Name implements sim.Algorithm.
func (a *OFFBR) Name() string {
	if a.Dynamic {
		return "OFFBR-dyn"
	}
	return "OFFBR-fixed"
}

func (a *OFFBR) factor() float64 {
	if a.ThetaFactor > 0 {
		return a.ThetaFactor
	}
	return 2
}

// Reset implements sim.Algorithm.
func (a *OFFBR) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("offbr: empty initial placement")
	}
	a.env = env
	a.pool = env.NewPool()
	a.pool.Bootstrap(env.Start)
	a.theta = a.factor() * env.Costs.Create
	a.accum = 0
	a.epochStart = 0
	a.memo = roundMemo{}
	return nil
}

// Placement implements sim.Algorithm.
func (a *OFFBR) Placement() core.Placement { return a.pool.Active() }

// Inactive implements sim.Algorithm.
func (a *OFFBR) Inactive() int { return a.pool.NumInactive() }

// ReuseAccess implements sim.AccessReuser: when the last lookahead window
// scanned round t under the placement the driver is about to serve with,
// hand its access cost back instead of letting sim.Run re-evaluate it.
func (a *OFFBR) ReuseAccess(t int, p core.Placement, d cost.Demand) (cost.AccessCost, bool) {
	return a.memo.cached(a.seq, t, p, d)
}

// Prepare implements sim.Algorithm: OFFBR reconfigures between epochs,
// before serving the first round of the upcoming epoch.
func (a *OFFBR) Prepare(t int) core.Delta {
	if t != a.epochStart {
		return core.Delta{}
	}
	agg, length := lookahead(a.env, a.seq, a.pool.Active(), a.pool.NumInactive(), t, a.theta, &a.memo)
	if length == 0 {
		return core.Delta{}
	}
	target := online.BestResponse(a.env, a.pool, agg, length, online.SearchMoves{Move: true, Deactivate: true, Add: true})
	if target.Equal(a.pool.Active()) {
		return core.Delta{}
	}
	delta, err := a.pool.SwitchTo(target)
	if err != nil {
		panic(err)
	}
	// The window was scored under the pre-switch placement; re-score it
	// under the new one so the driver keeps reusing memoized access costs
	// through the reconfiguration.
	rescoreWindow(a.env, a.seq, a.pool.Active(), a.pool.NumInactive(), t, a.theta, &a.memo)
	return delta
}

// Observe implements sim.Algorithm: accumulate cost and detect epoch ends
// with exactly ONBR's trigger.
func (a *OFFBR) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	a.accum += access.Total() + a.pool.RunCost()
	if a.accum < a.theta {
		return core.Delta{}
	}
	length := t - a.epochStart + 1
	a.pool.AdvanceEpoch()
	if a.Dynamic && length > 0 {
		a.theta = a.factor() * a.env.Costs.Create / float64(length)
	}
	a.accum = 0
	a.epochStart = t + 1
	return core.Delta{}
}
