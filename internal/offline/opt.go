// Package offline implements the paper's offline strategies (Section IV),
// which know the whole request sequence in advance: the optimal dynamic
// program OPT, the lookahead best-response variants OFFBR and OFFTH, and
// the static reference OFFSTAT used to quantify the benefit of dynamic
// allocation and migration.
package offline

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tractability bounds for the dynamic program. The paper simulates OPT on
// small line graphs for the same reason: "the computational complexity of
// OPT is rather high for scenarios with many servers".
const (
	// MaxOPTStates bounds the number of configurations (per-node
	// none/inactive/active vectors with at most k servers).
	MaxOPTStates = 60000
	// MaxOPTNodes bounds the node count so occupied sets fit a bitmask.
	MaxOPTNodes = 63
	// maxDenseTransition bounds the entries of the precomputed
	// occupied-mask transition-cost matrix (64 MiB of float64s); larger
	// instances fall back to computing transition costs on the fly.
	maxDenseTransition = 1 << 23
)

// OPT is the optimal offline algorithm of Section IV-A. It fills the
// matrix opt[time][configuration] by dynamic programming over full
// configurations γ (for every node: no server, inactive server, or active
// server), exploiting the optimal-substructure property of the migration
// problem:
//
//	opt[t][γ] = min over γ' of opt[t−1][γ'] + Cost(γ'→γ)
//	          + Costrun(γ) + Costacc(σt, γ)
//
// and reconstructs the cost-minimal configuration path backwards from the
// cheapest final configuration.
type OPT struct {
	seq *workload.Sequence

	env      *sim.Env
	schedule []core.Vector // chosen configuration per round
	cursor   int
	planned  float64 // DP objective, for cross-checking against the ledger
}

// NewOPT returns the optimal offline strategy for the given sequence.
func NewOPT(seq *workload.Sequence) *OPT { return &OPT{seq: seq} }

// Name implements sim.Algorithm.
func (o *OPT) Name() string { return "OPT" }

// PlannedCost returns the dynamic program's objective value: the total
// cost of the chosen schedule excluding nothing. It equals the ledger
// total of a simulation run (up to floating-point rounding) and is exposed
// for integration tests and for competitive-ratio computations.
func (o *OPT) PlannedCost() float64 { return o.planned }

// Schedule returns the chosen configuration per round. The slice is owned
// by the algorithm.
func (o *OPT) Schedule() []core.Vector { return o.schedule }

// Reset implements sim.Algorithm: it solves the dynamic program.
func (o *OPT) Reset(env *sim.Env) error {
	n := env.Graph.N()
	if n > MaxOPTNodes {
		return fmt.Errorf("opt: %d nodes exceed the tractable bound %d", n, MaxOPTNodes)
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = n
	}
	if count := core.CountVectors(n, k, MaxOPTStates); count > MaxOPTStates {
		return fmt.Errorf("opt: configuration space exceeds the tractable bound %d (n=%d, k=%d)",
			MaxOPTStates, n, k)
	}
	o.env = env
	o.cursor = 0

	rounds := o.seq.Len()
	if rounds == 0 {
		o.schedule = nil
		o.planned = 0
		return nil
	}

	s := newOptSolver(env, o.seq, core.EnumerateVectors(n, k, 0), runtime.GOMAXPROCS(0))
	if err := s.solve(); err != nil {
		return err
	}
	o.planned = s.planned
	o.schedule = s.scheduleOut
	return nil
}

// optSolver holds the dense, precomputed tables of one dynamic-program
// solve. All round-invariant quantities — per-state occupied/active
// indexes and running costs, the occupied-mask universe, the mask-to-mask
// transition-cost matrix, and the per-active-set placements — are hoisted
// out of the per-round recurrence, which then runs over flat slices (no
// map lookups) and fans out over the workers.
type optSolver struct {
	env     *sim.Env
	seq     *workload.Sequence
	states  []core.Vector
	workers int

	// Per state: dense occupied-mask index, dense active-set index, and
	// the round-invariant running cost.
	maskOf []int32
	actIdx []int32
	runOf  []float64

	masks      []uint64         // dense occupied-mask universe
	placements []core.Placement // per active index
	trans      []float64        // dense transition costs [to*len(masks)+from]; nil → on the fly

	// Per-round scratch, preallocated once.
	prev, next            []float64
	access                []float64 // per active index, for the current round
	bestByMask, arrival   []float64
	argByMask, argArrival []int32
	parent                [][]int32
	parentSlab            []int32
	curDemand             cost.Demand // demand of the round being filled
	curParent             []int32     // parent row of the round being stepped

	planned     float64
	scheduleOut []core.Vector
}

func newOptSolver(env *sim.Env, seq *workload.Sequence, states []core.Vector, workers int) *optSolver {
	s := &optSolver{env: env, seq: seq, states: states, workers: workers}
	ns := len(states)
	s.maskOf = make([]int32, ns)
	s.actIdx = make([]int32, ns)
	s.runOf = make([]float64, ns)

	maskIndex := make(map[uint64]int32) // occupied mask → dense index
	activeIndex := make(map[uint64]int32)
	for i, st := range states {
		occ := st.OccupiedMask()
		mi, ok := maskIndex[occ]
		if !ok {
			mi = int32(len(s.masks))
			maskIndex[occ] = mi
			s.masks = append(s.masks, occ)
		}
		s.maskOf[i] = mi

		act := st.ActiveMask()
		ai, ok := activeIndex[act]
		if !ok {
			ai = int32(len(s.placements))
			activeIndex[act] = ai
			s.placements = append(s.placements, st.ActivePlacement())
		}
		s.actIdx[i] = ai
		s.runOf[i] = st.RunCost(env.Costs)
	}

	// The transition cost Cost(γ'→γ) depends only on the occupied sets, so
	// it is a masks × masks matrix — precomputed densely when it fits.
	nm := len(s.masks)
	if nm*nm <= maxDenseTransition {
		s.trans = make([]float64, nm*nm)
		fill := func(lo, hi int) {
			for to := lo; to < hi; to++ {
				row := s.trans[to*nm : (to+1)*nm]
				toMask := s.masks[to]
				for from, frm := range s.masks {
					row[from] = core.TransitionCostMasks(s.env.Costs, frm, toMask)
				}
			}
		}
		if w := s.fanWorkers(nm); w > 1 {
			cost.ParallelChunksWorkers(nm, w, optParallelGrain, fill)
		} else {
			fill(0, nm)
		}
	}

	rounds := seq.Len()
	s.prev = make([]float64, ns)
	s.next = make([]float64, ns)
	s.access = make([]float64, len(s.placements))
	s.bestByMask = make([]float64, nm)
	s.arrival = make([]float64, nm)
	s.argByMask = make([]int32, nm)
	s.argArrival = make([]int32, nm)
	s.parentSlab = make([]int32, rounds*ns)
	s.parent = make([][]int32, rounds)
	for t := range s.parent {
		s.parent[t] = s.parentSlab[t*ns : (t+1)*ns]
	}
	return s
}

// fanWorkers returns how many goroutines are worth spawning for n items,
// requiring at least optParallelGrain items per chunk. The fan-out itself
// runs through cost.ParallelChunksWorkers; the serial paths call the range
// kernels directly so the per-round loop stays allocation-free.
func (s *optSolver) fanWorkers(n int) int {
	workers := s.workers
	if workers > n/optParallelGrain {
		workers = n / optParallelGrain
	}
	return workers
}

// optParallelGrain is the minimum chunk size worth a goroutine.
const optParallelGrain = 256

// fillAccess computes the access cost of round t for every distinct active
// set: Costacc is shared by all states with the same active placement.
func (s *optSolver) fillAccess(t int) {
	s.curDemand = s.seq.Demand(t)
	n := len(s.placements)
	if w := s.fanWorkers(n); w > 1 {
		cost.ParallelChunksWorkers(n, w, optParallelGrain, func(lo, hi int) { s.accessRange(lo, hi) })
		return
	}
	s.accessRange(0, n)
}

func (s *optSolver) accessRange(lo, hi int) {
	for ai := lo; ai < hi; ai++ {
		ac := s.env.Eval.Access(s.placements[ai], s.curDemand)
		v := math.Inf(1)
		if !ac.Infinite() {
			v = ac.Total()
		}
		s.access[ai] = v
	}
}

// transCost returns Cost(γ'→γ) between two dense mask indexes.
func (s *optSolver) transCost(from, to int) float64 {
	if s.trans != nil {
		return s.trans[to*len(s.masks)+from]
	}
	return core.TransitionCostMasks(s.env.Costs, s.masks[from], s.masks[to])
}

// step advances the recurrence from round t-1 (in prev) to round t (into
// next): the minimisation over predecessor states collapses to occupied
// masks, runs once per destination mask (not once per state), and fans out
// over the workers.
func (s *optSolver) step(t int) {
	nm := len(s.masks)
	for mi := 0; mi < nm; mi++ {
		s.bestByMask[mi] = math.Inf(1)
		s.argByMask[mi] = -1
	}
	for i := range s.states {
		mi := s.maskOf[i]
		if s.prev[i] < s.bestByMask[mi] {
			s.bestByMask[mi] = s.prev[i]
			s.argByMask[mi] = int32(i)
		}
	}
	s.fillAccess(t)
	// Cheapest arrival per destination mask: min over source masks of
	// bestByMask + transition cost, in ascending source order (ties keep
	// the earlier source, exactly like the per-state scan it replaces).
	if w := s.fanWorkers(nm); w > 1 {
		cost.ParallelChunksWorkers(nm, w, optParallelGrain, func(lo, hi int) { s.arrivalRange(lo, hi) })
	} else {
		s.arrivalRange(0, nm)
	}
	s.curParent = s.parent[t]
	ns := len(s.states)
	if w := s.fanWorkers(ns); w > 1 {
		cost.ParallelChunksWorkers(ns, w, optParallelGrain, func(lo, hi int) { s.finishRange(lo, hi) })
	} else {
		s.finishRange(0, ns)
	}
	s.prev, s.next = s.next, s.prev
}

func (s *optSolver) arrivalRange(lo, hi int) {
	nm := len(s.masks)
	for to := lo; to < hi; to++ {
		best, arg := math.Inf(1), int32(-1)
		if s.trans != nil {
			row := s.trans[to*nm : (to+1)*nm]
			for from := 0; from < nm; from++ {
				if math.IsInf(s.bestByMask[from], 1) {
					continue
				}
				if c := s.bestByMask[from] + row[from]; c < best {
					best, arg = c, s.argByMask[from]
				}
			}
		} else {
			for from := 0; from < nm; from++ {
				if math.IsInf(s.bestByMask[from], 1) {
					continue
				}
				if c := s.bestByMask[from] + s.transCost(from, to); c < best {
					best, arg = c, s.argByMask[from]
				}
			}
		}
		s.arrival[to] = best
		s.argArrival[to] = arg
	}
}

// finishRange combines arrival, running and access cost into next and
// records the parent pointers of the current round.
func (s *optSolver) finishRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		mi := s.maskOf[i]
		s.next[i] = s.arrival[mi] + s.runOf[i] + s.access[s.actIdx[i]]
		s.curParent[i] = s.argArrival[mi]
	}
}

// solve runs the full dynamic program and backtracks the schedule.
func (s *optSolver) solve() error {
	rounds := s.seq.Len()

	// γ0 is the shared initial configuration: Start nodes active.
	start := core.NewVector(s.env.Graph.N())
	for _, v := range s.env.Start {
		start[v] = core.StateActive
	}
	startOcc := start.OccupiedMask()

	// Round 0: opt[0][γ] = Cost(γ0→γ) + Costrun(γ) + Costacc(σ0, γ).
	s.fillAccess(0)
	parent0 := s.parent[0]
	round0 := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.prev[i] = core.TransitionCostMasks(s.env.Costs, startOcc, s.masks[s.maskOf[i]]) +
				s.runOf[i] + s.access[s.actIdx[i]]
			parent0[i] = -1
		}
	}
	if w := s.fanWorkers(len(s.states)); w > 1 {
		cost.ParallelChunksWorkers(len(s.states), w, optParallelGrain, round0)
	} else {
		round0(0, len(s.states))
	}

	for t := 1; t < rounds; t++ {
		s.step(t)
	}

	// Backtrack from the cheapest final configuration.
	bestFinal, argFinal := math.Inf(1), -1
	for i, c := range s.prev {
		if c < bestFinal {
			bestFinal, argFinal = c, i
		}
	}
	if argFinal < 0 {
		return fmt.Errorf("opt: no feasible schedule (every configuration has infinite cost)")
	}
	s.planned = bestFinal
	s.scheduleOut = make([]core.Vector, rounds)
	cur := int32(argFinal)
	for t := rounds - 1; t >= 0; t-- {
		s.scheduleOut[t] = s.states[cur]
		cur = s.parent[t][cur]
	}
	return nil
}

// vectorAt returns the configuration serving round t (γ0 before round 0).
func (o *OPT) vectorAt(t int) core.Vector {
	if t < 0 || len(o.schedule) == 0 {
		n := o.env.Graph.N()
		v := core.NewVector(n)
		for _, s := range o.env.Start {
			v[s] = core.StateActive
		}
		return v
	}
	if t >= len(o.schedule) {
		t = len(o.schedule) - 1
	}
	return o.schedule[t]
}

// Prepare implements sim.Algorithm: OPT reconfigures before serving the
// round, exactly as in the dynamic program's recurrence.
func (o *OPT) Prepare(t int) core.Delta {
	from, to := o.vectorAt(t-1), o.vectorAt(t)
	o.cursor = t
	total := core.TransitionCost(o.env.Costs, from, to)
	if total == 0 {
		return core.Delta{}
	}
	// Split the closed-form total back into β- and c-parts for the ledger.
	created := popcountMask(to.OccupiedMask() &^ from.OccupiedMask())
	vacated := popcountMask(from.OccupiedMask() &^ to.OccupiedMask())
	migr := vacated
	if migr > created {
		migr = created
	}
	if o.env.Costs.Beta >= o.env.Costs.Create {
		migr = 0
	}
	return core.Delta{
		Migration:  float64(migr) * o.env.Costs.Beta,
		Creation:   float64(created-migr) * o.env.Costs.Create,
		Migrations: migr,
		Creations:  created - migr,
	}
}

func popcountMask(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Placement implements sim.Algorithm.
func (o *OPT) Placement() core.Placement { return o.vectorAt(o.cursor).ActivePlacement() }

// Inactive implements sim.Algorithm.
func (o *OPT) Inactive() int {
	_, inactive := o.vectorAt(o.cursor).Counts()
	return inactive
}

// Observe implements sim.Algorithm: OPT acts only in Prepare.
func (o *OPT) Observe(int, cost.Demand, cost.AccessCost) core.Delta { return core.Delta{} }
