// Package offline implements the paper's offline strategies (Section IV),
// which know the whole request sequence in advance: the optimal dynamic
// program OPT, the lookahead best-response variants OFFBR and OFFTH, and
// the static reference OFFSTAT used to quantify the benefit of dynamic
// allocation and migration.
package offline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tractability bounds for the dynamic program. The paper simulates OPT on
// small line graphs for the same reason: "the computational complexity of
// OPT is rather high for scenarios with many servers".
const (
	// MaxOPTStates bounds the number of configurations (per-node
	// none/inactive/active vectors with at most k servers).
	MaxOPTStates = 60000
	// MaxOPTNodes bounds the node count so occupied sets fit a bitmask.
	MaxOPTNodes = 63
)

// OPT is the optimal offline algorithm of Section IV-A. It fills the
// matrix opt[time][configuration] by dynamic programming over full
// configurations γ (for every node: no server, inactive server, or active
// server), exploiting the optimal-substructure property of the migration
// problem:
//
//	opt[t][γ] = min over γ' of opt[t−1][γ'] + Cost(γ'→γ)
//	          + Costrun(γ) + Costacc(σt, γ)
//
// and reconstructs the cost-minimal configuration path backwards from the
// cheapest final configuration.
type OPT struct {
	seq *workload.Sequence

	env      *sim.Env
	schedule []core.Vector // chosen configuration per round
	cursor   int
	planned  float64 // DP objective, for cross-checking against the ledger
}

// NewOPT returns the optimal offline strategy for the given sequence.
func NewOPT(seq *workload.Sequence) *OPT { return &OPT{seq: seq} }

// Name implements sim.Algorithm.
func (o *OPT) Name() string { return "OPT" }

// PlannedCost returns the dynamic program's objective value: the total
// cost of the chosen schedule excluding nothing. It equals the ledger
// total of a simulation run (up to floating-point rounding) and is exposed
// for integration tests and for competitive-ratio computations.
func (o *OPT) PlannedCost() float64 { return o.planned }

// Schedule returns the chosen configuration per round. The slice is owned
// by the algorithm.
func (o *OPT) Schedule() []core.Vector { return o.schedule }

// Reset implements sim.Algorithm: it solves the dynamic program.
func (o *OPT) Reset(env *sim.Env) error {
	n := env.Graph.N()
	if n > MaxOPTNodes {
		return fmt.Errorf("opt: %d nodes exceed the tractable bound %d", n, MaxOPTNodes)
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = n
	}
	if count := core.CountVectors(n, k, MaxOPTStates); count > MaxOPTStates {
		return fmt.Errorf("opt: configuration space exceeds the tractable bound %d (n=%d, k=%d)",
			MaxOPTStates, n, k)
	}
	states := core.EnumerateVectors(n, k, 0)
	o.env = env
	o.cursor = 0

	rounds := o.seq.Len()
	if rounds == 0 {
		o.schedule = nil
		o.planned = 0
		return nil
	}

	// Precompute per-state masks and group states by occupied mask: the
	// transition cost Cost(γ'→γ) depends only on the occupied sets, so the
	// minimisation over γ' can run over occupied masks instead of states.
	occOf := make([]uint64, len(states))
	actOf := make([]uint64, len(states))
	runOf := make([]float64, len(states))
	for i, st := range states {
		occOf[i] = st.OccupiedMask()
		actOf[i] = st.ActiveMask()
		runOf[i] = st.RunCost(env.Costs)
	}
	maskIndex := make(map[uint64]int) // occupied mask → dense index
	var masks []uint64
	maskOf := make([]int, len(states))
	for i, m := range occOf {
		idx, ok := maskIndex[m]
		if !ok {
			idx = len(masks)
			maskIndex[m] = idx
			masks = append(masks, m)
		}
		maskOf[i] = idx
	}

	// Access cost per round is shared by all states with the same active
	// set; memoised lazily per round.
	placementOf := make(map[uint64]core.Placement)
	for i, st := range states {
		if _, ok := placementOf[actOf[i]]; !ok {
			placementOf[actOf[i]] = st.ActivePlacement()
		}
	}
	accessFor := func(t int, cache map[uint64]float64, active uint64) float64 {
		if v, ok := cache[active]; ok {
			return v
		}
		ac := env.Eval.Access(placementOf[active], o.seq.Demand(t))
		v := math.Inf(1)
		if !ac.Infinite() {
			v = ac.Total()
		}
		cache[active] = v
		return v
	}

	// γ0 is the shared initial configuration: Start nodes active.
	start := core.NewVector(n)
	for _, v := range env.Start {
		start[v] = core.StateActive
	}
	startOcc := start.OccupiedMask()

	prev := make([]float64, len(states))
	next := make([]float64, len(states))
	parent := make([][]int32, rounds)
	// Round 0: opt[0][γ] = Cost(γ0→γ) + Costrun(γ) + Costacc(σ0, γ).
	cache := make(map[uint64]float64)
	parent[0] = make([]int32, len(states))
	for i := range states {
		prev[i] = core.TransitionCostMasks(env.Costs, startOcc, occOf[i]) +
			runOf[i] + accessFor(0, cache, actOf[i])
		parent[0][i] = -1
	}

	// Rounds 1..T−1.
	bestByMask := make([]float64, len(masks))
	argByMask := make([]int32, len(masks))
	for t := 1; t < rounds; t++ {
		for mi := range bestByMask {
			bestByMask[mi] = math.Inf(1)
			argByMask[mi] = -1
		}
		for i := range states {
			mi := maskOf[i]
			if prev[i] < bestByMask[mi] {
				bestByMask[mi] = prev[i]
				argByMask[mi] = int32(i)
			}
		}
		cache = make(map[uint64]float64)
		parent[t] = make([]int32, len(states))
		for i := range states {
			best, arg := math.Inf(1), int32(-1)
			for mi, frm := range masks {
				if math.IsInf(bestByMask[mi], 1) {
					continue
				}
				c := bestByMask[mi] + core.TransitionCostMasks(env.Costs, frm, occOf[i])
				if c < best {
					best, arg = c, argByMask[mi]
				}
			}
			next[i] = best + runOf[i] + accessFor(t, cache, actOf[i])
			parent[t][i] = arg
		}
		prev, next = next, prev
	}

	// Backtrack from the cheapest final configuration.
	bestFinal, argFinal := math.Inf(1), -1
	for i, c := range prev {
		if c < bestFinal {
			bestFinal, argFinal = c, i
		}
	}
	if argFinal < 0 {
		return fmt.Errorf("opt: no feasible schedule (every configuration has infinite cost)")
	}
	o.planned = bestFinal
	o.schedule = make([]core.Vector, rounds)
	cur := int32(argFinal)
	for t := rounds - 1; t >= 0; t-- {
		o.schedule[t] = states[cur]
		cur = parent[t][cur]
	}
	return nil
}

// vectorAt returns the configuration serving round t (γ0 before round 0).
func (o *OPT) vectorAt(t int) core.Vector {
	if t < 0 || len(o.schedule) == 0 {
		n := o.env.Graph.N()
		v := core.NewVector(n)
		for _, s := range o.env.Start {
			v[s] = core.StateActive
		}
		return v
	}
	if t >= len(o.schedule) {
		t = len(o.schedule) - 1
	}
	return o.schedule[t]
}

// Prepare implements sim.Algorithm: OPT reconfigures before serving the
// round, exactly as in the dynamic program's recurrence.
func (o *OPT) Prepare(t int) core.Delta {
	from, to := o.vectorAt(t-1), o.vectorAt(t)
	o.cursor = t
	total := core.TransitionCost(o.env.Costs, from, to)
	if total == 0 {
		return core.Delta{}
	}
	// Split the closed-form total back into β- and c-parts for the ledger.
	created := popcountMask(to.OccupiedMask() &^ from.OccupiedMask())
	vacated := popcountMask(from.OccupiedMask() &^ to.OccupiedMask())
	migr := vacated
	if migr > created {
		migr = created
	}
	if o.env.Costs.Beta >= o.env.Costs.Create {
		migr = 0
	}
	return core.Delta{
		Migration:  float64(migr) * o.env.Costs.Beta,
		Creation:   float64(created-migr) * o.env.Costs.Create,
		Migrations: migr,
		Creations:  created - migr,
	}
}

func popcountMask(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Placement implements sim.Algorithm.
func (o *OPT) Placement() core.Placement { return o.vectorAt(o.cursor).ActivePlacement() }

// Inactive implements sim.Algorithm.
func (o *OPT) Inactive() int {
	_, inactive := o.vectorAt(o.cursor).Counts()
	return inactive
}

// Observe implements sim.Algorithm: OPT acts only in Prepare.
func (o *OPT) Observe(int, cost.Demand, cost.AccessCost) core.Delta { return core.Delta{} }
