package offline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OFFTH is the offline adaption of ONTH sketched in Section IV-B ("a
// similar transformation can be done from ONTH to OFFTH: we simply compute
// optimal strategies of small epochs at hindsight"): it keeps ONTH's
// small/large epoch triggers but scores the restricted best response
// against the *upcoming* small epoch, and places the extra server of a
// large-epoch end at the position optimal for the upcoming demand window.
type OFFTH struct {
	seq *workload.Sequence
	// Y is the small-epoch factor (threshold y·β); zero means the paper's
	// y = 2.
	Y float64

	env  *sim.Env
	pool *core.Pool

	smallAccum float64
	smallStart int
	pendingBR  bool

	memo roundMemo

	largeAccess float64
	largeRun    float64
	largeLen    int
	pendingAdd  bool
}

// NewOFFTH returns the offline threshold strategy for the sequence.
func NewOFFTH(seq *workload.Sequence) *OFFTH { return &OFFTH{seq: seq} }

// Name implements sim.Algorithm.
func (a *OFFTH) Name() string { return "OFFTH" }

func (a *OFFTH) y() float64 {
	if a.Y > 0 {
		return a.Y
	}
	return 2
}

// Reset implements sim.Algorithm.
func (a *OFFTH) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("offth: empty initial placement")
	}
	a.env = env
	a.pool = env.NewPool()
	a.pool.Bootstrap(env.Start)
	a.smallAccum, a.smallStart = 0, 0
	a.memo = roundMemo{}
	a.largeAccess, a.largeRun, a.largeLen = 0, 0, 0
	a.pendingBR, a.pendingAdd = true, false // best-respond to the first window
	return nil
}

// Placement implements sim.Algorithm.
func (a *OFFTH) Placement() core.Placement { return a.pool.Active() }

// Inactive implements sim.Algorithm.
func (a *OFFTH) Inactive() int { return a.pool.NumInactive() }

// ReuseAccess implements sim.AccessReuser: rounds the last lookahead
// window scored under the serving placement are handed back to the driver
// instead of being evaluated a second time.
func (a *OFFTH) ReuseAccess(t int, p core.Placement, d cost.Demand) (cost.AccessCost, bool) {
	return a.memo.cached(a.seq, t, p, d)
}

// Prepare implements sim.Algorithm: apply the reconfiguration decided at
// the last epoch boundary, scored against the upcoming window.
func (a *OFFTH) Prepare(t int) core.Delta {
	var delta core.Delta
	// needRescore tracks whether the memo's window was scored under a
	// placement the pool has since switched away from; a trailing re-score
	// refreshes it so the driver's AccessReuser hook survives the
	// reconfiguration.
	needRescore := false
	if a.pendingAdd {
		a.pendingAdd = false
		cur := a.pool.Active()
		if a.env.Pool.MaxServers <= 0 || cur.Len() < a.env.Pool.MaxServers {
			agg, length := lookahead(a.env, a.seq, cur, a.pool.NumInactive(), t, a.y()*a.env.Costs.Beta, &a.memo)
			if length > 0 {
				if v, _, ok := a.env.Eval.BestAddition(cur, agg); ok {
					d, err := a.pool.SwitchTo(cur.With(v))
					if err != nil {
						panic(err)
					}
					delta = delta.Add(d)
					needRescore = true
				}
			}
		}
	}
	if a.pendingBR {
		a.pendingBR = false
		agg, length := lookahead(a.env, a.seq, a.pool.Active(), a.pool.NumInactive(), t, a.y()*a.env.Costs.Beta, &a.memo)
		if length > 0 {
			// This scan ran under the current placement, so the memo is
			// fresh again whether or not the add above switched.
			needRescore = false
			target := online.BestResponse(a.env, a.pool, agg, length, online.SearchMoves{Move: true, Deactivate: true})
			if !target.Equal(a.pool.Active()) {
				d, err := a.pool.SwitchTo(target)
				if err != nil {
					panic(err)
				}
				delta = delta.Add(d)
				needRescore = true
			}
		}
	}
	if needRescore {
		rescoreWindow(a.env, a.seq, a.pool.Active(), a.pool.NumInactive(), t, a.y()*a.env.Costs.Beta, &a.memo)
	}
	return delta
}

// Observe implements sim.Algorithm: run ONTH's two epoch triggers on the
// actually charged costs.
func (a *OFFTH) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	run := a.pool.RunCost()
	a.smallAccum += access.Total() + run
	a.largeAccess += access.Total()
	a.largeRun += run
	a.largeLen++

	kcur := float64(a.pool.NumActive())
	if a.largeAccess/(kcur+1)-a.largeRun > a.env.Costs.Create {
		a.pendingAdd = true
		a.largeAccess, a.largeRun, a.largeLen = 0, 0, 0
		a.smallAccum, a.smallStart = 0, t+1
		return core.Delta{}
	}
	if a.smallAccum >= a.y()*a.env.Costs.Beta {
		a.pendingBR = true
		a.pool.AdvanceEpoch()
		a.smallAccum, a.smallStart = 0, t+1
	}
	return core.Delta{}
}
