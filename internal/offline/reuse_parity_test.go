package offline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hookless hides the ReuseAccess method of the wrapped algorithm: the
// embedded field has sim.Algorithm's method set only, so the driver's
// AccessReuser type assertion fails and every round is evaluated afresh —
// the pre-hook behaviour.
type hookless struct {
	sim.Algorithm
}

// countingReuser delegates to the wrapped OFFBR/OFFTH hook and counts how
// often the driver actually reused a lookahead-computed round.
type countingReuser struct {
	sim.Algorithm
	inner sim.AccessReuser
	hits  int
}

func (c *countingReuser) ReuseAccess(t int, p core.Placement, d cost.Demand) (cost.AccessCost, bool) {
	ac, ok := c.inner.ReuseAccess(t, p, d)
	if ok {
		c.hits++
	}
	return ac, ok
}

func reuseScenarios(t *testing.T, n int, seed int64) (*sim.Env, []*workload.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.ErdosRenyi(n, 0.05, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	commuter, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 8, Lambda: 5}, 160)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := workload.TimeZones(env.Metric, workload.TimeZonesConfig{T: 5, P: 0.5, Lambda: 8}, 160,
		rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := workload.FlashCrowd(env.Metric, workload.FlashCrowdConfig{BaseRequests: 6, Spikes: 3, Peak: 40, Tau: 10}, 160,
		rand.New(rand.NewSource(seed+2)))
	if err != nil {
		t.Fatal(err)
	}
	return env, []*workload.Sequence{commuter, zones, crowd}
}

// TestDriverReuseParity pins the double-evaluation fix: for OFFBR (fixed
// and dynamic θ) and OFFTH, the ledger of a run with the AccessReuser hook
// active is bit-identical to a run with the hook hidden, across several
// scenarios including the new flash-crowd workload.
func TestDriverReuseParity(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		env, seqs := reuseScenarios(t, 40, seed)
		for _, seq := range seqs {
			algs := []struct {
				label string
				make  func() sim.Algorithm
			}{
				{"OFFBR-fixed", func() sim.Algorithm { return NewOFFBR(seq) }},
				{"OFFBR-dyn", func() sim.Algorithm { a := NewOFFBR(seq); a.Dynamic = true; return a }},
				{"OFFTH", func() sim.Algorithm { return NewOFFTH(seq) }},
			}
			for _, a := range algs {
				hooked, err := sim.Run(env, a.make(), seq)
				if err != nil {
					t.Fatalf("seed %d %s on %s: %v", seed, a.label, seq.Name(), err)
				}
				fresh, err := sim.Run(env, hookless{a.make()}, seq)
				if err != nil {
					t.Fatalf("seed %d %s on %s (hook off): %v", seed, a.label, seq.Name(), err)
				}
				if !reflect.DeepEqual(hooked.Totals, fresh.Totals) {
					t.Fatalf("seed %d %s on %s: totals diverge with hook on/off:\n on  %+v\n off %+v",
						seed, a.label, seq.Name(), hooked.Totals, fresh.Totals)
				}
				if !reflect.DeepEqual(hooked.Rounds, fresh.Rounds) {
					for r := range hooked.Rounds {
						if hooked.Rounds[r] != fresh.Rounds[r] {
							t.Fatalf("seed %d %s on %s round %d: %+v vs %+v",
								seed, a.label, seq.Name(), r, hooked.Rounds[r], fresh.Rounds[r])
						}
					}
				}
			}
		}
	}
}

// TestDriverReuseActuallyFires asserts the hook is not dead code: over a
// stable-demand run whose epochs turn over without reconfiguring, most
// served rounds must come out of the lookahead memo instead of being
// re-evaluated. (A window that triggers a switch is re-scored under the
// post-switch placement — see TestDriverReuseForcedSwitch.)
func TestDriverReuseActuallyFires(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	seq := heavyCornerSeq(7, 3, 120)

	inner := NewOFFBR(seq)
	counter := &countingReuser{Algorithm: inner, inner: inner}
	if _, err := sim.Run(env, counter, seq); err != nil {
		t.Fatal(err)
	}
	// θ = 2c = 40 against ~3.5/round: after the first epoch moves the
	// server onto the demand, every later epoch keeps the placement, so
	// its whole lookahead window is served from the memo.
	if counter.hits < seq.Len()/2 {
		t.Fatalf("hook fired on %d of %d rounds, want at least half", counter.hits, seq.Len())
	}

	th := NewOFFTH(seq)
	thCounter := &countingReuser{Algorithm: th, inner: th}
	if _, err := sim.Run(env, thCounter, seq); err != nil {
		t.Fatal(err)
	}
	if thCounter.hits == 0 {
		t.Fatal("OFFTH hook never fired")
	}
}

// alternatingSeq flips heavy demand between the two ends of the line every
// `phase` rounds, so every lookahead window sees the demand on the far side
// and best-responds by moving the server — each epoch forces a switch.
func alternatingSeq(n, perRound, phase, rounds int) *workload.Sequence {
	demands := make([]cost.Demand, rounds)
	for i := range demands {
		node := 0
		if (i/phase)%2 == 0 {
			node = n - 1
		}
		demands[i] = cost.DemandFromPairs(cost.NodeCount{Node: node, Count: perRound})
	}
	return workload.NewSequence("alternating", demands)
}

// TestDriverReuseForcedSwitch pins the switched-window fix: on a workload
// that forces a reconfiguration at essentially every epoch boundary, the
// re-scored windows must (a) leave the ledger bit-identical to a hook-off
// run, and (b) keep the AccessReuser hook firing — before the fix a
// switching window could never be reused, so a permanently switching run
// degenerated to zero hits.
func TestDriverReuseForcedSwitch(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	seq := alternatingSeq(8, 6, 10, 120)

	algs := []struct {
		label string
		make  func() sim.Algorithm
	}{
		{"OFFBR-fixed", func() sim.Algorithm { return NewOFFBR(seq) }},
		{"OFFBR-dyn", func() sim.Algorithm { a := NewOFFBR(seq); a.Dynamic = true; return a }},
		{"OFFTH", func() sim.Algorithm { return NewOFFTH(seq) }},
	}
	for _, a := range algs {
		inner := a.make()
		counter := &countingReuser{Algorithm: inner, inner: inner.(sim.AccessReuser)}
		hooked, err := sim.Run(env, counter, seq)
		if err != nil {
			t.Fatalf("%s: %v", a.label, err)
		}
		fresh, err := sim.Run(env, hookless{a.make()}, seq)
		if err != nil {
			t.Fatalf("%s (hook off): %v", a.label, err)
		}
		if !reflect.DeepEqual(hooked.Totals, fresh.Totals) {
			t.Fatalf("%s: totals diverge with hook on/off:\n on  %+v\n off %+v",
				a.label, hooked.Totals, fresh.Totals)
		}
		for r := range hooked.Rounds {
			if hooked.Rounds[r] != fresh.Rounds[r] {
				t.Fatalf("%s round %d: %+v vs %+v", a.label, r, hooked.Rounds[r], fresh.Rounds[r])
			}
		}
		// The workload must actually force reconfigurations...
		if hooked.Totals.Migration+hooked.Totals.Creation == 0 {
			t.Fatalf("%s: alternating demand forced no reconfiguration", a.label)
		}
		// ...and the re-scored windows must keep the hook alive through
		// them.
		if counter.hits == 0 {
			t.Fatalf("%s: hook never fired on the forced-switch run", a.label)
		}
		t.Logf("%s: %d of %d rounds reused", a.label, counter.hits, seq.Len())
	}
}

// TestDriverReuseRejectsForeignSequence pins the hook's safety guard:
// running an algorithm against a different sequence than it planned for
// must fall back to fresh evaluation (correct ledger, zero reuse), not
// hand back costs of the planned sequence's demands.
func TestDriverReuseRejectsForeignSequence(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	planned := heavyCornerSeq(7, 3, 120)
	served := heavyCornerSeq(0, 5, 120) // different nodes and volume

	inner := NewOFFBR(planned)
	counter := &countingReuser{Algorithm: inner, inner: inner}
	got, err := sim.Run(env, counter, served)
	if err != nil {
		t.Fatal(err)
	}
	if counter.hits != 0 {
		t.Fatalf("hook fired %d times for a foreign sequence", counter.hits)
	}
	want, err := sim.Run(env, hookless{NewOFFBR(planned)}, served)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Totals, want.Totals) {
		t.Fatalf("foreign-sequence ledger diverged: %+v vs %+v", got.Totals, want.Totals)
	}
}
