package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func timedPartial(nanos []int64) *Partial {
	p := &Partial{Figure: "f", Seed: 1, Cells: len(nanos)}
	for idx, ns := range nanos {
		p.Results = append(p.Results, CellResult{Idx: idx, Values: []float64{float64(idx)}, Nanos: ns})
	}
	return p
}

func TestPlanShardsLPT(t *testing.T) {
	// LPT greedy: cells sorted longest-first, each to the least-loaded
	// shard. 10,9,8,2,2,2 over 2 shards → {10,2,2,2}=16 and {9,8}=17.
	p := timedPartial([]int64{10, 9, 8, 2, 2, 2})
	pl, err := PlanShards(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 2, 1, 1, 1}; !reflect.DeepEqual(pl.Assign, want) {
		t.Fatalf("assignment %v, want %v", pl.Assign, want)
	}
	if pl.ShardNanos[0] != 16 || pl.ShardNanos[1] != 17 {
		t.Fatalf("predicted loads %v", pl.ShardNanos)
	}
	if got := pl.ShardCells(2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("shard 2 cells %v", got)
	}
	// Every cell lands on exactly one shard — the split is a partition.
	covered := 0
	for sh := 1; sh <= pl.Shards; sh++ {
		covered += len(pl.ShardCells(sh))
	}
	if covered != p.Cells {
		t.Fatalf("plan covers %d of %d cells", covered, p.Cells)
	}
}

func TestPlanShardsDeterministicTies(t *testing.T) {
	// Equal timings: order falls back to cell index, shards to shard
	// number, so the plan is reproducible.
	p := timedPartial([]int64{5, 5, 5, 5})
	a, err := PlanShards(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanShards(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		t.Fatalf("plans differ across runs: %v vs %v", a.Assign, b.Assign)
	}
	if want := []int{1, 2, 1, 2}; !reflect.DeepEqual(a.Assign, want) {
		t.Fatalf("tie-broken assignment %v, want %v", a.Assign, want)
	}
}

func TestPlanShardsUntimedCells(t *testing.T) {
	// Cells without timings (older partials) still spread across shards.
	p := timedPartial([]int64{0, 0, 0, 0, 0, 0})
	pl, err := PlanShards(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for sh := 1; sh <= 3; sh++ {
		if got := len(pl.ShardCells(sh)); got != 2 {
			t.Fatalf("shard %d got %d cells", sh, got)
		}
	}
}

func TestPlanShardsMixedTimedUntimed(t *testing.T) {
	// Untimed cells (older partials) must spread by cell count even when
	// the timed cells have already made the loads unequal — an untimed
	// cell adds no load, so chasing the least-loaded shard would pile
	// every one of them onto the same machine.
	p := timedPartial([]int64{10, 7, 0, 0, 0, 0, 0, 0})
	pl, err := PlanShards(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for sh := 1; sh <= 2; sh++ {
		if got := len(pl.ShardCells(sh)); got != 4 {
			t.Fatalf("shard %d got %d of 8 cells: %v", sh, got, pl.Assign)
		}
	}
	if pl.ShardNanos[0] != 10 || pl.ShardNanos[1] != 7 {
		t.Fatalf("timed load split %v", pl.ShardNanos)
	}
}

func TestPlanShardsRejectsIncomplete(t *testing.T) {
	p := timedPartial([]int64{1, 2})
	p.Cells = 3
	if _, err := PlanShards(p, 2); err == nil {
		t.Fatal("incomplete partial planned")
	}
	if _, err := PlanShards(timedPartial([]int64{1}), 0); err == nil {
		t.Fatal("zero shards planned")
	}
}

func TestPlanRoundTrip(t *testing.T) {
	pl, err := PlanShards(timedPartial([]int64{7, 3, 3, 1}), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, pl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pl) {
		t.Fatalf("round trip mangled plan: %+v vs %+v", got, pl)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		{Figure: "", Cells: 1, Shards: 1, Assign: []int{1}},
		{Figure: "f", Cells: 0, Shards: 1},
		{Figure: "f", Cells: 2, Shards: 1, Assign: []int{1}},
		{Figure: "f", Cells: 1, Shards: 1, Assign: []int{2}},
		{Figure: "f", Cells: 1, Shards: 1, Assign: []int{0}},
	}
	for i, pl := range bad {
		if err := pl.Validate(); err == nil {
			t.Fatalf("bad plan %d validated", i)
		}
	}
}

func TestMergePartialsKeepsTimings(t *testing.T) {
	a := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{1}, Nanos: 100}}}
	b := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 1, Values: []float64{2}, Nanos: 50}}}
	m, err := MergePartials(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalNanos() != 150 {
		t.Fatalf("merged timings %d, want 150", m.TotalNanos())
	}
	// Overlap with differing timings is not a conflict — values decide.
	dup := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{1}, Nanos: 999}}}
	if _, err := MergePartials(a, b, dup); err != nil {
		t.Fatalf("timing-only overlap rejected: %v", err)
	}
}
