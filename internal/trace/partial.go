package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CellResult is one evaluated grid cell of a sharded experiment run: the
// cell's flat index, the values it produced, and the wall-clock the
// evaluation took. Timings are provenance, not results — they feed
// timing-balanced shard planning (PlanShards) and never reach the reduced
// table, so two runs of the same shard may differ in Nanos while staying
// bit-identical in Values.
type CellResult struct {
	Idx    int       `json:"idx"`
	Values []float64 `json:"values"`
	Nanos  int64     `json:"ns,omitempty"`
}

// Partial is the mergeable on-disk result of evaluating a subset of an
// experiment's cell grid — the unit of work a shard (one process or one
// machine) contributes. Floats survive the JSON round trip exactly:
// encoding/json emits the shortest representation that parses back to the
// same float64, so merged tables stay byte-identical with single-process
// runs.
type Partial struct {
	// Figure names the spec the cells belong to.
	Figure string `json:"figure"`
	// Seed and Quick record the experiment options the cells were evaluated
	// under; merging partials from mismatched options is an error.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// Cells is the total grid size; all shards of one run agree on it.
	Cells int `json:"cells"`
	// Shard/Shards record which slice of the grid this partial covers
	// (1-based), for diagnostics; 0/0 on merged partials.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
	// Results are the evaluated cells, sorted by index.
	Results []CellResult `json:"results"`
}

// Validate checks internal consistency: indices in range, sorted, unique,
// values present.
func (p *Partial) Validate() error {
	if p.Figure == "" {
		return fmt.Errorf("trace: partial without a figure name")
	}
	if p.Cells <= 0 {
		return fmt.Errorf("trace: partial %s with grid size %d", p.Figure, p.Cells)
	}
	last := -1
	for _, r := range p.Results {
		if r.Idx < 0 || r.Idx >= p.Cells {
			return fmt.Errorf("trace: partial %s cell %d outside grid of %d", p.Figure, r.Idx, p.Cells)
		}
		if r.Idx <= last {
			return fmt.Errorf("trace: partial %s cells not sorted or duplicated at %d", p.Figure, r.Idx)
		}
		if len(r.Values) == 0 {
			return fmt.Errorf("trace: partial %s cell %d without values", p.Figure, r.Idx)
		}
		last = r.Idx
	}
	return nil
}

// Complete reports whether every cell of the grid has a result.
func (p *Partial) Complete() bool {
	return len(p.Results) == p.Cells
}

// MissingCells lists the grid indices with no result, in ascending order —
// what a coverage check reports and what a resume run must evaluate. Nil
// when the partial is complete.
func (p *Partial) MissingCells() []int {
	if p.Complete() {
		return nil
	}
	missing := make([]int, 0, p.Cells-len(p.Results))
	next := 0
	for _, r := range p.Results {
		for ; next < r.Idx; next++ {
			missing = append(missing, next)
		}
		next = r.Idx + 1
	}
	for ; next < p.Cells; next++ {
		missing = append(missing, next)
	}
	return missing
}

// TotalNanos sums the recorded evaluation wall-clock of the partial's cells
// — the per-shard cost `figures -merge` reports, and the quantity a timing
// plan balances across machines.
func (p *Partial) TotalNanos() int64 {
	var total int64
	for _, r := range p.Results {
		total += r.Nanos
	}
	return total
}

// WritePartial serialises the partial as indented JSON.
func WritePartial(w io.Writer, p *Partial) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPartial parses a partial written by WritePartial.
func ReadPartial(r io.Reader) (*Partial, error) {
	var p Partial
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("trace: reading partial: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MergePartials deterministically folds the shards of one experiment run
// into a single partial: results are collected by cell index and sorted, so
// the merge order of the inputs cannot affect the output. Partials must
// agree on figure, options, and grid size; a cell present in several shards
// must carry bit-identical values (a shard split is a partition, so an
// overlap signals a misconfigured run — it is tolerated only when harmless).
func MergePartials(parts ...*Partial) (*Partial, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: no partials to merge")
	}
	first := parts[0]
	merged := &Partial{Figure: first.Figure, Seed: first.Seed, Quick: first.Quick, Cells: first.Cells}
	byIdx := make(map[int]CellResult, first.Cells)
	for _, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Figure != first.Figure {
			return nil, fmt.Errorf("trace: merging partials of %q and %q", first.Figure, p.Figure)
		}
		if p.Seed != first.Seed || p.Quick != first.Quick {
			return nil, fmt.Errorf("trace: partials of %s disagree on options (seed %d/%d, quick %v/%v)",
				first.Figure, first.Seed, p.Seed, first.Quick, p.Quick)
		}
		if p.Cells != first.Cells {
			return nil, fmt.Errorf("trace: partials of %s disagree on grid size (%d vs %d)",
				first.Figure, first.Cells, p.Cells)
		}
		for _, r := range p.Results {
			// Overlapping cells must agree bit-exactly on values; timings are
			// provenance and may differ — the first occurrence wins.
			if prev, ok := byIdx[r.Idx]; ok {
				if !sameValues(prev.Values, r.Values) {
					return nil, fmt.Errorf("trace: partials of %s conflict on cell %d", first.Figure, r.Idx)
				}
				continue
			}
			byIdx[r.Idx] = r
		}
	}
	merged.Results = make([]CellResult, 0, len(byIdx))
	for _, r := range byIdx {
		merged.Results = append(merged.Results, r)
	}
	sort.Slice(merged.Results, func(i, j int) bool { return merged.Results[i].Idx < merged.Results[j].Idx })
	return merged, nil
}

func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
