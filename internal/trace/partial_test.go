package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func samplePartial() *Partial {
	return &Partial{
		Figure: "13",
		Seed:   7,
		Quick:  true,
		Cells:  4,
		Shard:  1,
		Shards: 2,
		Results: []CellResult{
			{Idx: 0, Values: []float64{1.0 / 3.0, 42}},
			{Idx: 2, Values: []float64{math.Nextafter(1, 2)}},
		},
	}
}

func TestPartialRoundTrip(t *testing.T) {
	p := samplePartial()
	var buf bytes.Buffer
	if err := WritePartial(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartial(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Figure != p.Figure || got.Seed != p.Seed || got.Quick != p.Quick || got.Cells != p.Cells {
		t.Fatalf("header mangled: %+v", got)
	}
	if len(got.Results) != len(p.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(p.Results))
	}
	for i, r := range got.Results {
		if r.Idx != p.Results[i].Idx {
			t.Fatalf("result %d index %d, want %d", i, r.Idx, p.Results[i].Idx)
		}
		for j, v := range r.Values {
			// Bit-exact: the shard format must not lose precision.
			if v != p.Results[i].Values[j] {
				t.Fatalf("result %d value %d: %v != %v", i, j, v, p.Results[i].Values[j])
			}
		}
	}
}

func TestPartialValidate(t *testing.T) {
	bad := []*Partial{
		{Figure: "", Cells: 2},
		{Figure: "x", Cells: 0},
		{Figure: "x", Cells: 2, Results: []CellResult{{Idx: 2, Values: []float64{1}}}},
		{Figure: "x", Cells: 2, Results: []CellResult{{Idx: 1, Values: []float64{1}}, {Idx: 0, Values: []float64{1}}}},
		{Figure: "x", Cells: 2, Results: []CellResult{{Idx: 0, Values: []float64{1}}, {Idx: 0, Values: []float64{1}}}},
		{Figure: "x", Cells: 2, Results: []CellResult{{Idx: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad partial %d validated", i)
		}
	}
	if err := samplePartial().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadPartialRejectsGarbage(t *testing.T) {
	if _, err := ReadPartial(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPartial(strings.NewReader(`{"figure":"","cells":0}`)); err == nil {
		t.Fatal("invalid partial accepted")
	}
}

func TestMergePartials(t *testing.T) {
	a := &Partial{Figure: "f", Seed: 1, Cells: 4, Shard: 1, Shards: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{10}}, {Idx: 2, Values: []float64{30}}}}
	b := &Partial{Figure: "f", Seed: 1, Cells: 4, Shard: 2, Shards: 2,
		Results: []CellResult{{Idx: 1, Values: []float64{20}}, {Idx: 3, Values: []float64{40}}}}
	for _, order := range [][]*Partial{{a, b}, {b, a}} {
		m, err := MergePartials(order...)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Complete() {
			t.Fatalf("merge incomplete: %d of %d", len(m.Results), m.Cells)
		}
		// Deterministic regardless of input order: sorted by index.
		for i, r := range m.Results {
			if r.Idx != i || r.Values[0] != float64((i+1)*10) {
				t.Fatalf("merged cell %d = %+v", i, r)
			}
		}
	}
}

func TestMergePartialsOverlapAndConflict(t *testing.T) {
	a := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{1}}}}
	dup := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{1}}, {Idx: 1, Values: []float64{2}}}}
	if m, err := MergePartials(a, dup); err != nil || !m.Complete() {
		t.Fatalf("identical overlap rejected: %v", err)
	}
	conflict := &Partial{Figure: "f", Seed: 1, Cells: 2,
		Results: []CellResult{{Idx: 0, Values: []float64{99}}}}
	if _, err := MergePartials(a, conflict); err == nil {
		t.Fatal("conflicting overlap accepted")
	}
}

func TestMergePartialsRejectsMismatch(t *testing.T) {
	base := &Partial{Figure: "f", Seed: 1, Quick: true, Cells: 2}
	cases := []*Partial{
		{Figure: "g", Seed: 1, Quick: true, Cells: 2},
		{Figure: "f", Seed: 2, Quick: true, Cells: 2},
		{Figure: "f", Seed: 1, Quick: false, Cells: 2},
		{Figure: "f", Seed: 1, Quick: true, Cells: 3},
	}
	for i, c := range cases {
		if _, err := MergePartials(base, c); err == nil {
			t.Fatalf("mismatched partial %d accepted", i)
		}
	}
	if _, err := MergePartials(); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestMissingCells(t *testing.T) {
	p := samplePartial() // cells 0 and 2 of 4 present
	if got := p.MissingCells(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("MissingCells = %v, want [1 3]", got)
	}
	full := &Partial{Figure: "13", Cells: 2, Results: []CellResult{
		{Idx: 0, Values: []float64{1}},
		{Idx: 1, Values: []float64{2}},
	}}
	if got := full.MissingCells(); got != nil {
		t.Fatalf("complete partial reported missing cells %v", got)
	}
	empty := &Partial{Figure: "13", Cells: 3}
	if got := empty.MissingCells(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("empty partial MissingCells = %v, want [0 1 2]", got)
	}
}
