package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleLedger() *sim.Ledger {
	l := &sim.Ledger{Algorithm: "X", Scenario: "Y"}
	l.Rounds = []sim.RoundCost{
		{Latency: 1, Load: 2, Run: 3, Active: 1},
		{Latency: 4, Load: 5, Run: 6, Migration: 40, Active: 2, Inactive: 1},
	}
	return l
}

func TestWriteLedger(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLedger(&buf, sampleLedger()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "round,latency,load,run") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,4,5,6,40,0,55,2,1") {
		t.Fatalf("row = %q", lines[2])
	}
}

func sampleTable() *Table {
	return &Table{
		Title:  "Figure X",
		XLabel: "lambda",
		YLabel: "total cost",
		X:      []float64{1, 2},
		Series: []Series{
			{Label: "ONTH", Values: []float64{10, 20}},
			{Label: "ONBR", Values: []float64{30, 40}},
		},
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	want := "lambda,ONTH,ONBR\n1,10,30\n2,20,40\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestTableValidate(t *testing.T) {
	bad := sampleTable()
	bad.Series[0].Values = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged table validated")
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, bad); err == nil {
		t.Fatal("ragged table written")
	}
	if err := Render(&buf, bad); err == nil {
		t.Fatal("ragged table rendered")
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Figure X", "# y: total cost", "ONTH", "ONBR", "10.0000", "40.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNoTitle(t *testing.T) {
	tab := sampleTable()
	tab.Title, tab.YLabel = "", ""
	var buf bytes.Buffer
	if err := Render(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Fatal("unexpected comment lines")
	}
}
