// Package trace serialises simulation ledgers and experiment series as CSV
// so the paper's figures can be re-plotted with any external tool.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// WriteLedger emits one row per round with the full cost breakdown and
// server counts.
func WriteLedger(w io.Writer, l *sim.Ledger) error {
	cw := csv.NewWriter(w)
	header := []string{"round", "latency", "load", "run", "migration", "creation", "total", "active", "inactive"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for t, r := range l.Rounds {
		rec := []string{
			strconv.Itoa(t),
			f(r.Latency), f(r.Load), f(r.Run), f(r.Migration), f(r.Creation), f(r.Total()),
			strconv.Itoa(r.Active), strconv.Itoa(r.Inactive),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one plotted line: a label and one value per x-position.
type Series struct {
	Label  string
	Values []float64
}

// Table is the data behind one figure: shared x-axis values plus any number
// of series.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Validate checks that every series matches the x-axis length.
func (t *Table) Validate() error {
	for _, s := range t.Series {
		if len(s.Values) != len(t.X) {
			return fmt.Errorf("trace: series %q has %d values for %d x positions", s.Label, len(s.Values), len(t.X))
		}
	}
	return nil
}

// WriteTable emits the table as CSV: a header with the x-label and series
// labels, then one row per x position.
func WriteTable(w io.Writer, t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, labels(t.Series)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range t.X {
		rec := make([]string, 0, 1+len(t.Series))
		rec = append(rec, f(x))
		for _, s := range t.Series {
			rec = append(rec, f(s.Values[i]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render pretty-prints the table for terminal output: the experiment
// binaries print the same rows the paper's figures plot.
func Render(w io.Writer, t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	if t.YLabel != "" {
		fmt.Fprintf(w, "# y: %s\n", t.YLabel)
	}
	fmt.Fprintf(w, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(w, " %16s", s.Label)
	}
	fmt.Fprintln(w)
	for i, x := range t.X {
		fmt.Fprintf(w, "%-12g", x) //repcheck:allow-floatfmt fixed-width table is the pinned stdout format; full precision lives in f() and the JSON trace
		for _, s := range t.Series {
			fmt.Fprintf(w, " %16.4f", s.Values[i]) //repcheck:allow-floatfmt fixed-width table is the pinned stdout format; full precision lives in f() and the JSON trace
		}
		fmt.Fprintln(w)
	}
	return nil
}

func labels(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Label
	}
	return out
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
