package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Plan is a timing-balanced cell→shard assignment for one experiment grid,
// derived from a previous run's recorded per-cell wall-clock. Index
// arithmetic (cells congruent to i-1 mod m) splits the grid evenly by
// count, but cell costs are heterogeneous — later x positions often mean
// bigger networks — so equal counts can be far from equal time. A plan
// assigns cells by longest-processing-time greedy instead, so every shard's
// predicted total is within one cell of the optimum's worst case.
//
// The plan changes only which machine evaluates which cell: every cell is
// assigned to exactly one shard, so the merged grid — and the reduced table
// — is byte-identical to a modulo split or a single-process run.
type Plan struct {
	// Figure names the spec the assignment belongs to.
	Figure string `json:"figure"`
	// Seed and Quick record the options of the run the timings came from.
	// A plan is advisory — any run of the same grid can use it — but
	// timings from a different scale (quick vs paper) balance poorly.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick,omitempty"`
	// Cells is the grid size; Assign[idx] is the 1-based shard that
	// evaluates cell idx.
	Cells  int   `json:"cells"`
	Shards int   `json:"shards"`
	Assign []int `json:"assign"`
	// ShardNanos[i] is shard i+1's predicted total wall-clock, for
	// diagnostics.
	ShardNanos []int64 `json:"shard_ns,omitempty"`
}

// Validate checks internal consistency: one in-range shard per cell.
func (pl *Plan) Validate() error {
	if pl.Figure == "" {
		return fmt.Errorf("trace: plan without a figure name")
	}
	if pl.Cells <= 0 || pl.Shards <= 0 {
		return fmt.Errorf("trace: plan %s with %d cells over %d shards", pl.Figure, pl.Cells, pl.Shards)
	}
	if len(pl.Assign) != pl.Cells {
		return fmt.Errorf("trace: plan %s assigns %d of %d cells", pl.Figure, len(pl.Assign), pl.Cells)
	}
	for idx, sh := range pl.Assign {
		if sh < 1 || sh > pl.Shards {
			return fmt.Errorf("trace: plan %s sends cell %d to shard %d of %d", pl.Figure, idx, sh, pl.Shards)
		}
	}
	return nil
}

// ShardCells returns the cells the 1-based shard evaluates, in index order.
func (pl *Plan) ShardCells(shard int) []int {
	var idxs []int
	for idx, sh := range pl.Assign {
		if sh == shard {
			idxs = append(idxs, idx)
		}
	}
	return idxs
}

// PlanShards builds a timing-balanced plan from a complete partial (one
// holding every cell's result, typically the output of MergePartials over a
// previous run's shards). Cells are taken longest-first and each goes to
// the currently least-loaded shard — the classic LPT greedy. Ties break by
// cell index and shard number, so the plan is deterministic in the input
// timings. Cells without a recorded timing (older partials) sort last and
// spread by cell count instead of load, since they contribute none.
func PlanShards(p *Partial, shards int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Complete() {
		return nil, fmt.Errorf("trace: planning %s from %d of %d cells — merge a complete run first",
			p.Figure, len(p.Results), p.Cells)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("trace: planning %s over %d shards", p.Figure, shards)
	}
	order := make([]int, len(p.Results)) // positions into p.Results, longest cell first
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := p.Results[order[a]], p.Results[order[b]]
		if ra.Nanos != rb.Nanos {
			return ra.Nanos > rb.Nanos
		}
		return ra.Idx < rb.Idx
	})
	pl := &Plan{
		Figure: p.Figure, Seed: p.Seed, Quick: p.Quick,
		Cells: p.Cells, Shards: shards,
		Assign:     make([]int, p.Cells),
		ShardNanos: make([]int64, shards),
	}
	counts := make([]int, shards)
	for _, pos := range order {
		r := p.Results[pos]
		// Least predicted load wins, ties broken by fewest assigned cells,
		// then lowest shard number. An untimed cell contributes no load, so
		// for those the priorities flip — spread by cell count first —
		// otherwise every untimed cell would chase the same least-loaded
		// shard without ever changing it.
		best := 0
		for sh := 1; sh < shards; sh++ {
			var better bool
			if r.Nanos == 0 {
				better = counts[sh] < counts[best] ||
					(counts[sh] == counts[best] && pl.ShardNanos[sh] < pl.ShardNanos[best])
			} else {
				better = pl.ShardNanos[sh] < pl.ShardNanos[best] ||
					(pl.ShardNanos[sh] == pl.ShardNanos[best] && counts[sh] < counts[best])
			}
			if better {
				best = sh
			}
		}
		pl.Assign[r.Idx] = best + 1
		pl.ShardNanos[best] += r.Nanos
		counts[best]++
	}
	return pl, nil
}

// WritePlan serialises the plan as indented JSON.
func WritePlan(w io.Writer, pl *Plan) error {
	if err := pl.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pl)
}

// ReadPlan parses a plan written by WritePlan.
func ReadPlan(r io.Reader) (*Plan, error) {
	var pl Plan
	if err := json.NewDecoder(r).Decode(&pl); err != nil {
		return nil, fmt.Errorf("trace: reading plan: %w", err)
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &pl, nil
}
