package sim_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

func streamEnv(t *testing.T) (*sim.Env, *workload.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g, err := gen.ErdosRenyi(40, 0.1, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5},
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 8, Lambda: 5}, 120)
	if err != nil {
		t.Fatal(err)
	}
	return env, seq
}

// TestRunMatchesManualStream pins Run as a pure wrapper: serving the same
// sequence round by round through a Stream yields a bit-identical ledger.
func TestRunMatchesManualStream(t *testing.T) {
	env, seq := streamEnv(t)
	want, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewStream(env, online.NewONTH(), seq.Name())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seq.Len(); i++ {
		if s.Round() != i {
			t.Fatalf("round counter %d before serving round %d", s.Round(), i)
		}
		if _, err := s.Serve(seq.Demand(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Ledger()
	if got.Algorithm != want.Algorithm || got.Scenario != want.Scenario {
		t.Fatalf("header %q/%q, want %q/%q", got.Algorithm, got.Scenario, want.Algorithm, want.Scenario)
	}
	if len(got.Rounds) != len(want.Rounds) {
		t.Fatalf("%d rounds, want %d", len(got.Rounds), len(want.Rounds))
	}
	for i := range want.Rounds {
		if got.Rounds[i] != want.Rounds[i] {
			t.Fatalf("round %d: %+v, want %+v", i, got.Rounds[i], want.Rounds[i])
		}
	}
	if math.Float64bits(got.Totals.Total()) != math.Float64bits(want.Totals.Total()) {
		t.Fatalf("totals %v, want %v", got.Totals.Total(), want.Totals.Total())
	}
}

// TestStreamDiscardRounds pins that a non-retaining stream accumulates the
// exact totals of a retaining one while keeping Rounds empty.
func TestStreamDiscardRounds(t *testing.T) {
	env, seq := streamEnv(t)
	want, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewStream(env, online.NewONTH(), seq.Name())
	if err != nil {
		t.Fatal(err)
	}
	s.DiscardRounds()
	for i := 0; i < seq.Len(); i++ {
		if _, err := s.Serve(seq.Demand(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.Ledger().Rounds); n != 0 {
		t.Fatalf("discarding stream retained %d rounds", n)
	}
	got, wantT := s.Ledger().Totals, want.Totals
	for _, pair := range [][2]float64{
		{got.Latency, wantT.Latency}, {got.Load, wantT.Load}, {got.Run, wantT.Run},
		{got.Migration, wantT.Migration}, {got.Creation, wantT.Creation},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("totals diverged: %+v vs %+v", got, wantT)
		}
	}
}

// emptyAlg is a stub strategy with no active servers, for exercising the
// infinite-access failure path.
type emptyAlg struct{}

func (emptyAlg) Name() string                                         { return "empty" }
func (emptyAlg) Reset(*sim.Env) error                                 { return nil }
func (emptyAlg) Placement() core.Placement                            { return nil }
func (emptyAlg) Inactive() int                                        { return 0 }
func (emptyAlg) Prepare(int) core.Delta                               { return core.Delta{} }
func (emptyAlg) Observe(int, cost.Demand, cost.AccessCost) core.Delta { return core.Delta{} }

// TestStreamServeNoServers pins that a failing round does not advance the
// stream.
func TestStreamServeNoServers(t *testing.T) {
	env, _ := streamEnv(t)
	s, err := sim.NewStream(env, emptyAlg{}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Serve(cost.DemandFromPairs(cost.NodeCount{Node: 1, Count: 2})); err == nil {
		t.Fatal("serving without active servers succeeded")
	}
	if s.Round() != 0 {
		t.Fatalf("failed round advanced the counter to %d", s.Round())
	}
}
