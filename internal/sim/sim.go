// Package sim drives the synchronous allocation game of Section II-E: in
// every round t the requests σt arrive at their access points, the
// algorithm pays the access cost to the servers of the current
// configuration plus the configuration's running cost, and then it may
// reconfigure (allocate, remove, activate, deactivate, migrate servers),
// paying migration and creation costs.
//
// Offline algorithms reconfigure *before* serving a round (hook Prepare),
// exactly as in the dynamic program of Section IV-A; online algorithms
// react *after* serving (hook Observe), exactly as in the online game of
// Section II-E. The paper notes the two orderings are equivalent for its
// analysis because one round's requests are much cheaper than a migration.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload"
)

// Env is the immutable world one simulation runs in.
type Env struct {
	Graph  *graph.Graph
	Metric graph.Metric // latency oracle (dense matrix by default)
	Eval   *cost.Evaluator
	Costs  cost.Params
	Pool   core.Params    // queue capacity, expiry, server bound k
	Start  core.Placement // initial configuration γ0 shared by all algorithms
}

// NewEnv assembles an environment with the default dense metric backend:
// all-pairs distances, evaluator, and the paper's default initial
// configuration (one server at the network center).
func NewEnv(g *graph.Graph, load cost.LoadFunc, policy cost.Policy, costs cost.Params, pool core.Params) (*Env, error) {
	return NewEnvMetric(g, nil, load, policy, costs, pool, nil)
}

// NewEnvMetric is NewEnv with an explicit metric backend and optional
// start configuration. A nil metric selects the dense matrix; a nil start
// selects the paper's default, one server at the network center — note the
// exact center scan runs one Row per node, so huge-substrate callers on
// sparse backends pass an explicit start (e.g. core.NewPlacement of
// graph.ApproxCenter) instead. Exact backends (dense, sparse, landmark in
// exact mode) produce identical environments for identical graphs.
func NewEnvMetric(g *graph.Graph, m graph.Metric, load cost.LoadFunc, policy cost.Policy, costs cost.Params, pool core.Params, start core.Placement) (*Env, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = g.Metric()
	}
	if m.N() != g.N() {
		return nil, fmt.Errorf("sim: metric size %d does not match graph size %d", m.N(), g.N())
	}
	if start == nil {
		start = core.NewPlacement(graph.CenterOf(m))
	}
	pool.Costs = costs
	return &Env{
		Graph:  g,
		Metric: m,
		Eval:   cost.NewEvaluator(g, m, load, policy),
		Costs:  costs,
		Pool:   pool,
		Start:  start,
	}, nil
}

// NewPool returns a pool configured for this environment.
func (e *Env) NewPool() *core.Pool {
	return core.NewPool(e.Pool)
}

// Algorithm is a server allocation strategy playing the synchronous game.
type Algorithm interface {
	// Name identifies the strategy in ledgers and reports.
	Name() string
	// Reset discards run state and installs the initial configuration.
	Reset(env *Env) error
	// Placement returns the nodes currently hosting active servers.
	Placement() core.Placement
	// Inactive returns the number of cached inactive servers.
	Inactive() int
	// Prepare runs before round t is served. Offline strategies apply
	// their precomputed reconfiguration here; online strategies must not
	// reconfigure in Prepare (they have not seen σt yet) and typically
	// return the zero Delta.
	Prepare(t int) core.Delta
	// Observe runs after round t was served under the current placement
	// and charged; online strategies reconfigure here.
	Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta
}

// StateSnapshotter is implemented by algorithms whose run state can be
// serialised exactly and restored later: SnapshotState captures every
// mutable bit of the strategy (pool, epoch accumulators, thresholds —
// floats as exact bits, not decimal), and RestoreState, called on a
// freshly Reset algorithm over the identical environment, reinstalls it
// so that the subsequent rounds are bit-identical to a run that never
// stopped. The serving layer uses this to anchor WAL truncation: a
// checkpoint carrying a state snapshot can be restored directly, so the
// log entries before its cursor no longer need to be replayed and their
// segments can be deleted. Strategies with unserialisable state (e.g. an
// embedded RNG mid-sequence) simply do not implement the interface, and
// the serving layer keeps the full log instead.
type StateSnapshotter interface {
	// SnapshotState serialises the algorithm's mutable run state.
	SnapshotState() ([]byte, error)
	// RestoreState reinstalls a snapshot taken by the same strategy under
	// the same environment. The receiver must already be Reset.
	RestoreState(data []byte) error
}

// AccessReuser is implemented by algorithms whose own bookkeeping already
// evaluated the access cost of the round about to be served — the offline
// lookahead strategies OFFBR and OFFTH score upcoming rounds under the
// current placement, so when their window did not trigger a switch, the
// driver would re-evaluate exactly what the lookahead just computed. Run
// consults this hook before paying for a fresh evaluation; the returned
// cost must be exactly Eval.Access(p, d) (the ledger is pinned
// bit-identical with the hook on and off). Implementations verify d is
// the demand they scored — not just the round index — so running an
// algorithm against a different sequence than it planned for degrades to
// fresh evaluation instead of corrupting the ledger.
type AccessReuser interface {
	// ReuseAccess returns the access cost of serving demand d in round t
	// under placement p if the algorithm has already computed it, and
	// whether it did.
	ReuseAccess(t int, p core.Placement, d cost.Demand) (cost.AccessCost, bool)
}

// RoundCost is the ledger entry of one round.
type RoundCost struct {
	Latency   float64 // Σ delay(r) of the round's requests
	Load      float64 // Σ load(v, t) over server nodes
	Run       float64 // Costrun of the serving configuration
	Migration float64 // β-costs charged this round
	Creation  float64 // c-costs charged this round
	Active    int     // active servers while serving
	Inactive  int     // cached inactive servers while serving
}

// Total returns the round's summed cost.
func (r RoundCost) Total() float64 {
	return r.Latency + r.Load + r.Run + r.Migration + r.Creation
}

// Breakdown accumulates costs by category.
type Breakdown struct {
	Latency   float64
	Load      float64
	Run       float64
	Migration float64
	Creation  float64
}

// Access returns the summed access cost Costacc.
func (b Breakdown) Access() float64 { return b.Latency + b.Load }

// Total returns the summed overall cost.
func (b Breakdown) Total() float64 {
	return b.Latency + b.Load + b.Run + b.Migration + b.Creation
}

func (b Breakdown) add(r RoundCost) Breakdown {
	b.Latency += r.Latency
	b.Load += r.Load
	b.Run += r.Run
	b.Migration += r.Migration
	b.Creation += r.Creation
	return b
}

// Ledger records one full run.
type Ledger struct {
	Algorithm string
	Scenario  string
	Rounds    []RoundCost
	Totals    Breakdown
}

// Total returns the run's overall cost.
func (l *Ledger) Total() float64 { return l.Totals.Total() }

// MaxActive returns the peak number of active servers over the run.
func (l *Ledger) MaxActive() int {
	max := 0
	for _, r := range l.Rounds {
		if r.Active > max {
			max = r.Active
		}
	}
	return max
}

// Stream plays the synchronous game one round at a time, against demands
// that arrive incrementally instead of as a prebuilt sequence — the core
// the long-running placement service (internal/serve) is built on. Serve
// performs exactly the per-round work the batch driver used to inline, so
// Run, now a thin wrapper over a Stream, produces bit-identical ledgers.
//
// A Stream is not safe for concurrent use; the serving layer owns the
// single goroutine that calls Serve.
type Stream struct {
	env    *Env
	alg    Algorithm
	reuser AccessReuser
	ledger *Ledger
	keep   bool // retain per-round entries in the ledger (batch mode)
	t      int
}

// NewStream resets the algorithm against the environment and returns a
// stream positioned at round 0. scenario names the demand source in the
// ledger (a *workload.Sequence name in batch mode, a stream description in
// serving mode). The ledger retains every RoundCost; long-running callers
// that must not grow memory without bound call DiscardRounds.
func NewStream(env *Env, alg Algorithm, scenario string) (*Stream, error) {
	if err := alg.Reset(env); err != nil {
		return nil, fmt.Errorf("sim: reset %s: %w", alg.Name(), err)
	}
	reuser, _ := alg.(AccessReuser)
	return &Stream{
		env:    env,
		alg:    alg,
		reuser: reuser,
		ledger: &Ledger{Algorithm: alg.Name(), Scenario: scenario},
		keep:   true,
	}, nil
}

// DiscardRounds stops the ledger from retaining per-round entries: Totals
// keep accumulating (in the same order, so they stay bit-identical to a
// retaining run), but Rounds stays empty. For unbounded streams.
func (s *Stream) DiscardRounds() {
	s.keep = false
	s.ledger.Rounds = nil
}

// Round returns the index of the next round Serve will play.
func (s *Stream) Round() int { return s.t }

// Env returns the environment the stream plays in.
func (s *Stream) Env() *Env { return s.env }

// Algorithm returns the strategy under play.
func (s *Stream) Algorithm() Algorithm { return s.alg }

// Placement returns the current configuration.
func (s *Stream) Placement() core.Placement { return s.alg.Placement() }

// Ledger returns the stream's ledger so far. The stream keeps appending to
// it; callers that need a stable snapshot copy what they read.
func (s *Stream) Ledger() *Ledger { return s.ledger }

// RestoreTotals rewinds the stream to a checkpointed position: the next
// Serve plays round `round`, and the running totals continue from the
// given breakdown. It is the stream half of checkpoint restoration — the
// algorithm half goes through StateSnapshotter — and must only be applied
// to a fresh stream over the identical environment.
func (s *Stream) RestoreTotals(round int, totals Breakdown) {
	s.t = round
	s.ledger.Totals = totals
}

// Serve plays one round against demand d: Prepare, access-cost evaluation
// (through the AccessReuser hook when the algorithm already scored the
// round), Observe, and the ledger entry. It fails — without advancing the
// round counter or charging anything — if a round with requests is served
// by a configuration without active servers.
func (s *Stream) Serve(d cost.Demand) (RoundCost, error) {
	t := s.t
	pre := s.alg.Prepare(t)
	placement := s.alg.Placement()
	access, reused := cost.AccessCost{}, false
	if s.reuser != nil {
		access, reused = s.reuser.ReuseAccess(t, placement, d)
	}
	if !reused {
		access = s.env.Eval.Access(placement, d)
	}
	if access.Infinite() {
		return RoundCost{}, fmt.Errorf("sim: %s has no active server for %d requests in round %d", s.alg.Name(), d.Total(), t)
	}
	inactive := s.alg.Inactive()
	post := s.alg.Observe(t, d, access)
	delta := pre.Add(post)
	rc := RoundCost{
		Latency:   access.Latency,
		Load:      access.Load,
		Run:       s.env.Costs.Run(placement.Len(), inactive),
		Migration: delta.Migration,
		Creation:  delta.Creation,
		Active:    placement.Len(),
		Inactive:  inactive,
	}
	if s.keep {
		s.ledger.Rounds = append(s.ledger.Rounds, rc)
	}
	s.ledger.Totals = s.ledger.Totals.add(rc)
	s.t++
	return rc, nil
}

// Run plays the whole sequence and returns the ledger. It is the batch
// wrapper over Stream: every round of the prebuilt sequence is served in
// order, so the ledger is bit-identical to what the pre-Stream driver
// produced. It fails if a round with requests is served by a configuration
// without active servers.
func Run(env *Env, alg Algorithm, seq *workload.Sequence) (*Ledger, error) {
	s, err := NewStream(env, alg, seq.Name())
	if err != nil {
		return nil, err
	}
	s.ledger.Rounds = make([]RoundCost, 0, seq.Len())
	for t := 0; t < seq.Len(); t++ {
		if _, err := s.Serve(seq.Demand(t)); err != nil {
			return nil, err
		}
	}
	return s.Ledger(), nil
}
