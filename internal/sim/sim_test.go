package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload"
)

// static is a do-nothing algorithm serving everything from γ0.
type static struct {
	env *Env
}

func (s *static) Name() string              { return "static-test" }
func (s *static) Reset(env *Env) error      { s.env = env; return nil }
func (s *static) Placement() core.Placement { return s.env.Start.Clone() }
func (s *static) Inactive() int             { return 0 }
func (s *static) Prepare(int) core.Delta    { return core.Delta{} }
func (s *static) Observe(int, cost.Demand, cost.AccessCost) core.Delta {
	return core.Delta{}
}

// mover reconfigures once in Observe of round 0 to a fixed target.
type mover struct {
	static
	target core.Placement
	pool   *core.Pool
}

func (m *mover) Name() string { return "mover-test" }
func (m *mover) Reset(env *Env) error {
	m.env = env
	m.pool = env.NewPool()
	m.pool.Bootstrap(env.Start)
	return nil
}
func (m *mover) Placement() core.Placement { return m.pool.Active() }
func (m *mover) Inactive() int             { return m.pool.NumInactive() }
func (m *mover) Observe(t int, _ cost.Demand, _ cost.AccessCost) core.Delta {
	if t != 0 {
		return core.Delta{}
	}
	d, err := m.pool.SwitchTo(m.target)
	if err != nil {
		panic(err)
	}
	return d
}

func testEnv(t *testing.T, n int) *Env {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	env, err := NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvStartsAtCenter(t *testing.T) {
	env := testEnv(t, 5)
	if !env.Start.Equal(core.NewPlacement(2)) {
		t.Fatalf("start = %v, want center [2]", env.Start)
	}
}

func TestNewEnvRejectsBadInputs(t *testing.T) {
	g := graph.New(3) // disconnected
	if _, err := NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(), core.Params{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	line := graph.New(2)
	line.MustAddEdge(0, 1, 1, 1)
	if _, err := NewEnv(line, cost.Linear{}, cost.AssignMinCost, cost.Params{}, core.Params{}); err == nil {
		t.Fatal("invalid cost params accepted")
	}
}

func TestRunStaticLedger(t *testing.T) {
	env := testEnv(t, 5) // line, center 2
	seq := workload.NewSequence("test", []cost.Demand{
		cost.DemandFromList([]int{0}),    // dist 2 + load 1
		cost.DemandFromList([]int{4, 4}), // dist 4 + load 2... distances: 2 each
	})
	l, err := Run(env, &static{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(l.Rounds))
	}
	r0 := l.Rounds[0]
	if r0.Latency != 2 || r0.Load != 1 {
		t.Fatalf("round 0 = %+v", r0)
	}
	if r0.Run != 2.5 || r0.Active != 1 || r0.Inactive != 0 {
		t.Fatalf("round 0 run/active = %+v", r0)
	}
	r1 := l.Rounds[1]
	if r1.Latency != 4 || r1.Load != 2 {
		t.Fatalf("round 1 = %+v", r1)
	}
	wantTotal := (2.0 + 1 + 2.5) + (4 + 2 + 2.5)
	if math.Abs(l.Total()-wantTotal) > 1e-12 {
		t.Fatalf("total = %v, want %v", l.Total(), wantTotal)
	}
	if l.Algorithm != "static-test" || l.Scenario != "test" {
		t.Fatal("ledger labels wrong")
	}
}

func TestRunChargesReconfiguration(t *testing.T) {
	env := testEnv(t, 5)
	seq := workload.NewSequence("test", []cost.Demand{
		cost.DemandFromList([]int{0}),
		cost.DemandFromList([]int{0}),
	})
	m := &mover{target: core.NewPlacement(2, 0)} // add server at node 0: creation
	l, err := Run(env, m, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rounds[0].Creation != 400 {
		t.Fatalf("round 0 creation = %v, want 400", l.Rounds[0].Creation)
	}
	// Round 1 is served by the new two-server placement.
	if l.Rounds[1].Active != 2 {
		t.Fatalf("round 1 active = %d, want 2", l.Rounds[1].Active)
	}
	if l.Rounds[1].Latency != 0 {
		t.Fatalf("round 1 latency = %v, want 0 (local server)", l.Rounds[1].Latency)
	}
	if l.MaxActive() != 2 {
		t.Fatalf("MaxActive = %d", l.MaxActive())
	}
}

func TestRunObserveSeesDemandAfterCharging(t *testing.T) {
	// The engine must charge round t's access cost on the placement as of
	// Prepare, not on what Observe switches to. mover reconfigures in
	// round 0's Observe, so round 0 is still charged from the center.
	env := testEnv(t, 5)
	seq := workload.NewSequence("test", []cost.Demand{cost.DemandFromList([]int{0})})
	m := &mover{target: core.NewPlacement(0)}
	l, err := Run(env, m, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rounds[0].Latency != 2 {
		t.Fatalf("round 0 latency = %v, want 2 (served from the center)", l.Rounds[0].Latency)
	}
}

func TestRunEmptySequence(t *testing.T) {
	env := testEnv(t, 3)
	l, err := Run(env, &static{}, workload.NewSequence("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	if l.Total() != 0 || len(l.Rounds) != 0 {
		t.Fatal("empty run must cost nothing")
	}
}

// broken reports no active servers.
type broken struct{ static }

func (b *broken) Placement() core.Placement { return nil }

func TestRunFailsWithoutServers(t *testing.T) {
	env := testEnv(t, 3)
	seq := workload.NewSequence("test", []cost.Demand{cost.DemandFromList([]int{0})})
	if _, err := Run(env, &broken{}, seq); err == nil {
		t.Fatal("run with unserved requests must fail")
	}
}

func TestBreakdownAccessors(t *testing.T) {
	b := Breakdown{Latency: 1, Load: 2, Run: 3, Migration: 4, Creation: 5}
	if b.Access() != 3 {
		t.Fatalf("Access = %v", b.Access())
	}
	if b.Total() != 15 {
		t.Fatalf("Total = %v", b.Total())
	}
	r := RoundCost{Latency: 1, Load: 1, Run: 1, Migration: 1, Creation: 1}
	if r.Total() != 5 {
		t.Fatalf("RoundCost.Total = %v", r.Total())
	}
}
