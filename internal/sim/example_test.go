package sim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example runs ONTH on a tiny deterministic instance: a 5-node line with
// unit latencies and all demand pinned to one end. The strategy starts at
// the network center and converges onto the demand.
func Example() {
	g := graph.New(5)
	for v := 0; v+1 < 5; v++ {
		g.MustAddEdge(v, v+1, 1, graph.BandwidthT1)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.Params{Beta: 10, Create: 100, RunActive: 1, RunInactive: 0.1},
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		panic(err)
	}
	demands := make([]cost.Demand, 60)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{4, 4, 4})
	}
	seq := workload.NewSequence("pinned", demands)

	ledger, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		panic(err)
	}
	first, last := ledger.Rounds[0], ledger.Rounds[len(ledger.Rounds)-1]
	fmt.Printf("round 0:  server at %v, latency %v\n", env.Start, first.Latency)
	fmt.Printf("round %d: latency %v, migrations paid %v\n",
		len(ledger.Rounds)-1, last.Latency, ledger.Totals.Migration)
	// Output:
	// round 0:  server at [2], latency 6
	// round 59: latency 0, migrations paid 10
}
