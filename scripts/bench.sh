#!/usr/bin/env bash
# Runs the hot-path micro-benchmarks and emits a JSON perf snapshot
# (default BENCH_1.json) so later PRs have a trajectory to compare
# against. Usage:
#
#   scripts/bench.sh [output.json]
#   COUNT=10 scripts/bench.sh        # more samples per benchmark
#
# For statistically rigorous before/after comparisons prefer benchstat
# over raw snapshots (see PERFORMANCE.md).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
OUT="${1:-BENCH_1.json}"
BENCH='BenchmarkAccessLinear$|BenchmarkAccessQuadratic$|BenchmarkScorerSweep$|BenchmarkScorerSweepReuse$|BenchmarkScorerApplyMove$|BenchmarkBestResponse$|BenchmarkOPTLine5$|BenchmarkONBRCommuter$|BenchmarkONTHCommuter$|BenchmarkAllPairs500$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    if (!(name in ns)) { order[++m] = name }
    ns[name]     += $3;
    bytes[name]  += $5;
    allocs[name] += $7;
    count[name]++
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", date, goversion
    for (i = 1; i <= m; i++) {
        b = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f, \"samples\": %d}%s\n", \
            b, ns[b]/count[b], bytes[b]/count[b], allocs[b]/count[b], count[b], (i < m ? "," : "")
    }
    printf "  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
