#!/usr/bin/env bash
# Runs the hot-path micro-benchmarks and emits a JSON perf snapshot
# (default BENCH_10.json) so later PRs have a trajectory to compare
# against. When a previous snapshot exists (default BENCH_9.json), a
# delta table old/new is printed per benchmark. Usage:
#
#   scripts/bench.sh [output.json [baseline.json]]
#   COUNT=10 scripts/bench.sh        # more samples per benchmark
#
# For statistically rigorous before/after comparisons prefer benchstat
# over raw snapshots (see PERFORMANCE.md).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-6}"
OUT="${1:-BENCH_10.json}"
BASE="${2:-BENCH_9.json}"
BENCH='BenchmarkAccessLinear$|BenchmarkAccessQuadratic$|BenchmarkScorerSweep$|BenchmarkScorerSweepReuse$|BenchmarkScorerApplyMove$|BenchmarkBestResponse$|BenchmarkOPTLine5$|BenchmarkONBRCommuter$|BenchmarkONTHCommuter$|BenchmarkAllPairs500$|BenchmarkSparseRowCold$|BenchmarkSparseRowWarm$|BenchmarkLandmarkDist$|BenchmarkSmallWorldConstruct100k$|BenchmarkONCONF$|BenchmarkWFA$|BenchmarkWFALargeSpace$|BenchmarkONCONFLargeSpace$|BenchmarkLookaheadOFFBR$|BenchmarkLookaheadReuseOFFBR$|BenchmarkFlashCrowdGen$|BenchmarkDiurnalGen$|BenchmarkFigureRunnerLocal$|BenchmarkPoolPipelined$|BenchmarkPoolPerFigure$|BenchmarkPoolTCPLoopback$|BenchmarkDeadlineTracker$|BenchmarkServeIngest$|BenchmarkCheckpoint$|BenchmarkEngineRound$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
# The pool benchmarks (shared subprocess pool vs one pool per figure) live
# in the runner package, the serving-path benchmarks (ingest admission,
# checkpoint write, engine round) in internal/serve; everything else is in
# the repo root.
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . ./internal/experiments/runner ./internal/serve | tee "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    if (!(name in ns)) { order[++m] = name }
    # Locate values by their unit so benchmarks that b.ReportMetric extra
    # columns (e.g. "configs", "clusters") do not shift the standard ones.
    for (f = 3; f < NF; f++) {
        if ($(f+1) == "ns/op")          ns[name]     += $f
        else if ($(f+1) == "B/op")      bytes[name]  += $f
        else if ($(f+1) == "allocs/op") allocs[name] += $f
    }
    count[name]++
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": {\n", date, goversion
    for (i = 1; i <= m; i++) {
        b = order[i]
        printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.2f, \"samples\": %d}%s\n", \
            b, ns[b]/count[b], bytes[b]/count[b], allocs[b]/count[b], count[b], (i < m ? "," : "")
    }
    printf "  }\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

if [[ -f "$BASE" && "$BASE" != "$OUT" ]]; then
    echo
    echo "delta vs $BASE (ns/op):"
    awk '
    match($0, /"Benchmark[A-Za-z0-9]+"/) {
        name = substr($0, RSTART + 1, RLENGTH - 2)
        if (!match($0, /"ns_per_op": *[0-9.]+/)) { next }
        v = substr($0, RSTART + 13, RLENGTH - 13) + 0
        if (FILENAME == ARGV[1]) { old[name] = v }
        else {
            new[name] = v
            if (!(name in seen)) { order[++m] = name; seen[name] = 1 }
        }
    }
    END {
        printf "  %-28s %14s %14s %9s\n", "benchmark", "old", "new", "speedup"
        for (i = 1; i <= m; i++) {
            b = order[i]
            if (b in old && old[b] > 0)
                printf "  %-28s %14.1f %14.1f %8.2fx\n", b, old[b], new[b], old[b] / new[b]
            else
                printf "  %-28s %14s %14.1f %9s\n", b, "-", new[b], "new"
        }
    }' "$BASE" "$OUT"
fi
