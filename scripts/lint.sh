#!/usr/bin/env bash
# Static checks for the repo, in increasing order of specificity:
#
#   1. gofmt       — formatting, fail on any unformatted file
#   2. go vet      — the toolchain's full analyzer set (printf, copylocks,
#                    loopclosure, lostcancel, structtag, unreachable, …)
#   3. repcheck    — the repo's own contract analyzers (rowborrow,
#                    detrand, maprange, floatfmt); see ANALYSIS.md
#
# x/tools-only vet passes (nilness, unusedwrite, shadow) need a module
# download and are not available in the offline build; repcheck carries
# the repo-specific contracts instead. Run as `scripts/lint.sh` or
# `make lint`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt required on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== repcheck"
go run ./cmd/repcheck ./...

echo "lint clean"
