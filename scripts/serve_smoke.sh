#!/usr/bin/env bash
# End-to-end crash-recovery smoke for the streaming placement service.
#
# For each chaos fault kind the script: (1) serves under the fault and
# fires seeded load at it, interrupting the process mid-stream without a
# drain (the kill fault exits on its own; the others are SIGKILLed); (2)
# restarts healthy from the same state directory — recovery must replay
# the WAL and validate the checkpoint — serves more load, and SIGTERMs
# mid-load to exercise the graceful drain; (3) replays the WAL offline
# with `flexserve -replay` (the uninterrupted baseline) and byte-compares
# it against GET /ledger of a third recovered server. Finally an overload
# leg checks the admission controller sheds under a hot load generator
# while the server stays healthy.
#
#   scripts/serve_smoke.sh [port-base]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${1:-9188}
BIN=${BIN:-$(mktemp -d)/flexserve}
go build -o "$BIN" ./cmd/flexserve

COMMON=(-topo er -n 60 -scenario commuter-dynamic -alg onth -seed 1 -window 32)
SERVE=(-ckpt-every 2)

fail() { echo "serve_smoke: $*" >&2; exit 1; }

wait_ready() { # addr
    for _ in $(seq 1 50); do
        curl -sf "http://$1/readyz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    fail "server on $1 never became ready"
}

for fault in kill:20 slow:2:5ms flood:4:4 ckptfail:1; do
    kind=${fault%%:*}
    dir=$(mktemp -d)
    addr=127.0.0.1:$PORT; PORT=$((PORT + 1))
    echo "=== fault $fault (state in $dir) ==="

    # Phase 1: serve under the fault, fire load, die mid-stream (no drain).
    "$BIN" "${COMMON[@]}" "${SERVE[@]}" -serve "$addr" -statedir "$dir" \
        -tick 25ms -faultinject "$fault" 2>"$dir/serve1.log" &
    pid=$!
    wait_ready "$addr"
    "$BIN" "${COMMON[@]}" -fire "http://$addr" -rate 2000 -burst 20 -requests 600 \
        >"$dir/fire1.json" 2>/dev/null || true
    if [ "$kind" = kill ]; then
        wait "$pid" && fail "kill fault did not terminate the server" || true
    else
        kill -KILL "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi

    # Phase 2: healthy restart must recover, then drain gracefully mid-load.
    addr=127.0.0.1:$PORT; PORT=$((PORT + 1))
    "$BIN" "${COMMON[@]}" "${SERVE[@]}" -serve "$addr" -statedir "$dir" \
        -tick 25ms 2>"$dir/serve2.log" &
    pid=$!
    wait_ready "$addr"
    grep -q "recovered: replayed" "$dir/serve2.log" || fail "$fault: restart did not recover from the WAL"
    "$BIN" "${COMMON[@]}" -fire "http://$addr" -rate 2000 -burst 20 -requests 400 \
        >"$dir/fire2.json" 2>/dev/null &
    firepid=$!
    sleep 0.2
    kill -TERM "$pid"
    wait "$pid" || fail "$fault: drain exited non-zero"
    wait "$firepid" 2>/dev/null || true
    grep -q "drained:" "$dir/serve2.log" || fail "$fault: no drain summary logged"

    # Phase 3: the uninterrupted baseline (offline WAL replay) must be
    # byte-identical to GET /ledger of a recovered server.
    "$BIN" "${COMMON[@]}" -replay "$dir" >"$dir/baseline.json"
    addr=127.0.0.1:$PORT; PORT=$((PORT + 1))
    "$BIN" "${COMMON[@]}" "${SERVE[@]}" -serve "$addr" -statedir "$dir" \
        2>"$dir/serve3.log" &
    pid=$!
    wait_ready "$addr"
    curl -sf "http://$addr/ledger" >"$dir/ledger.http"
    kill -TERM "$pid"; wait "$pid" || true
    cmp "$dir/baseline.json" "$dir/ledger.http" \
        || fail "$fault: recovered /ledger diverges from the WAL replay baseline"
    echo "    recovery parity OK: $(wc -c <"$dir/baseline.json") byte ledger matches"
done

# Overload: a hot generator against a small queue and a slowed consumer
# (the slow-consumer fault) must shed non-critical load — 429s show up in
# the fire summary — while the server stays healthy.
dir=$(mktemp -d)
addr=127.0.0.1:$PORT; PORT=$((PORT + 1))
"$BIN" "${COMMON[@]}" -serve "$addr" -queuecap 64 -shed 0.5 \
    -faultinject slow:0:200ms 2>"$dir/serve.log" &
pid=$!
wait_ready "$addr"
"$BIN" "${COMMON[@]}" -fire "http://$addr" -rate 20000 -burst 100 -requests 4000 \
    >"$dir/fire.json" 2>/dev/null || true
curl -sf "http://$addr/healthz" >/dev/null || fail "server unhealthy under overload"
curl -sf "http://$addr/metrics" >"$dir/metrics.json"
kill -TERM "$pid"; wait "$pid" || true
python3 - "$dir/fire.json" "$dir/metrics.json" <<'EOF'
import json, sys
fire = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
assert fire["shed"] > 0, f"no load was shed under overload: {fire}"
assert fire["admitted"] > 0, f"nothing admitted under overload: {fire}"
classes = metrics["classes"]
noncrit = classes["standard"]["shed"] + classes["batch"]["shed"]
assert noncrit > 0, f"shed did not hit the non-critical classes: {classes}"
print(f"    overload OK: {fire['shed']} shed of {fire['sent']} sent, "
      f"non-critical sheds {noncrit}, critical sheds {classes['critical']['shed']}")
EOF

echo "serve_smoke: all fault kinds recovered bit-identically; overload shed verified"
