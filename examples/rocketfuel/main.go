// Rocketfuel: the paper's closing experiment — the time-zone scenario on
// the Rocketfuel AS-7018 (AT&T) topology, with OFFSTAT as the static
// reference. The measured AT&T router map is replaced by the synthetic
// AS-like stand-in of internal/topo (see DESIGN.md); the paper's reported
// outcome is the ordering OFFSTAT < ONTH < ONBR with ONTH "a factor less
// than two higher" than OFFSTAT.
//
// Run with:
//
//	go run ./examples/rocketfuel [-rounds 600] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	rounds := flag.Int("rounds", 600, "simulated rounds")
	lambda := flag.Int("lambda", 20, "rounds per time period")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := topo.ASLike(topo.AS7018Config(), rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS-7018-like substrate: %v (%d backbone PoPs)\n",
		g, topo.AS7018Config().BackbonePoPs)

	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := workload.TimeZones(env.Metric, workload.TimeZonesConfig{
		T: 12, P: 0.5, Lambda: *lambda,
	}, *rounds, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		log.Fatal(err)
	}

	offstat := offline.NewOFFSTAT(seq)
	results := map[string]float64{}
	for _, alg := range []sim.Algorithm{offstat, online.NewONTH(), online.NewONBR()} {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			log.Fatal(err)
		}
		results[l.Algorithm] = l.Total()
		fmt.Printf("%-12s total cost %12.2f\n", l.Algorithm, l.Total())
	}
	fmt.Printf("\nOFFSTAT chose %d static servers.\n", offstat.Kopt())
	fmt.Printf("ONTH / OFFSTAT = %.2f (paper: <2)\n", results["ONTH"]/results["OFFSTAT"])
	fmt.Printf("ONBR / OFFSTAT = %.2f (paper: ~4.3)\n", results["ONBR-fixed"]/results["OFFSTAT"])
}
