// Quickstart: build a substrate, generate a workload, run an online
// allocation strategy, and read the cost ledger.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// 1. A substrate network: 200 nodes, Erdős–Rényi with 1% connection
	//    probability, random T1/T2 bandwidths (the paper's default).
	rng := rand.New(rand.NewSource(42))
	g, err := gen.ErdosRenyi(200, 0.01, gen.DefaultOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An environment: cost parameters β=40, c=400, Ra=2.5, Ri=0.5,
	//    linear load, min-cost request routing, inactive cache of size 3.
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substrate: %v, network center at node %d\n", g, env.Start[0])

	// 3. A workload: commuters fan out from the center each morning and
	//    return each evening (T=10 phases, λ=15 rounds per phase).
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: 10, Lambda: 15}, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload:  %s, %d requests over %d rounds\n",
		seq.Name(), seq.TotalRequests(), seq.Len())

	// 4. Run the ONTH strategy (the paper's best online algorithm).
	ledger, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Read the ledger.
	fmt.Printf("\n%s on %s:\n", ledger.Algorithm, ledger.Scenario)
	fmt.Printf("  total cost:     %10.1f\n", ledger.Total())
	fmt.Printf("    latency:      %10.1f\n", ledger.Totals.Latency)
	fmt.Printf("    server load:  %10.1f\n", ledger.Totals.Load)
	fmt.Printf("    running cost: %10.1f\n", ledger.Totals.Run)
	fmt.Printf("    migrations:   %10.1f\n", ledger.Totals.Migration)
	fmt.Printf("    creations:    %10.1f\n", ledger.Totals.Creation)
	fmt.Printf("  peak servers:   %10d\n", ledger.MaxActive())
}
