// Cloudsap: an SAP-style business application runs in the cloud and is
// accessed by users around the globe — the paper's time-zone use case. As
// working hours move around the planet, half of the demand follows the
// current hotspot region while the rest stays dispersed. The example shows
// how the online strategies migrate and resize the server fleet and writes
// a per-round CSV ledger for plotting.
//
// Run with:
//
//	go run ./examples/cloudsap [-n 200] [-rounds 960] [-csv ledger.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 200, "substrate network size")
	rounds := flag.Int("rounds", 960, "simulated rounds")
	zones := flag.Int("zones", 24, "time zones (periods per day)")
	lambda := flag.Int("lambda", 10, "rounds per time period (sojourn τ)")
	p := flag.Float64("p", 0.5, "hotspot share of requests")
	seed := flag.Int64("seed", 11, "random seed")
	csvPath := flag.String("csv", "", "write ONTH's per-round ledger to this CSV file")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := gen.ErdosRenyi(*n, 0.01, gen.DefaultOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := workload.TimeZones(env.Metric, workload.TimeZonesConfig{
		T: *zones, P: *p, Lambda: *lambda,
	}, *rounds, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud workload: %s on %v\n\n", seq.Name(), g)

	var onthLedger *sim.Ledger
	for _, alg := range []sim.Algorithm{online.NewONTH(), online.NewONBR(), online.NewONBRDynamic()} {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			log.Fatal(err)
		}
		perRound := l.Total() / float64(len(l.Rounds))
		fmt.Printf("%-12s total %10.0f  (%.1f/round, %d migrations, %d creations, peak %d servers)\n",
			l.Algorithm, l.Total(), perRound,
			countMigrations(l), countCreations(l), l.MaxActive())
		if _, ok := alg.(*online.ONTH); ok {
			onthLedger = l
		}
	}

	fmt.Println("\nFollow-the-sun behaviour of ONTH (server count by day period):")
	day := *zones * *lambda
	if len(onthLedger.Rounds) >= 2*day {
		for period := 0; period < *zones; period += 4 {
			r := onthLedger.Rounds[len(onthLedger.Rounds)-day+period**lambda]
			fmt.Printf("  period %2d: %d active, %d cached inactive\n", period, r.Active, r.Inactive)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteLedger(f, onthLedger); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func countMigrations(l *sim.Ledger) int {
	n := 0
	for _, r := range l.Rounds {
		if r.Migration > 0 {
			n++
		}
	}
	return n
}

func countCreations(l *sim.Ledger) int {
	n := 0
	for _, r := range l.Rounds {
		if r.Creation > 0 {
			n++
		}
	}
	return n
}
