// Gaming: a mobile provider offers a latency-sensitive gaming application
// to commuting users — the paper's motivating mobile scenario. Each
// morning the players fan out from the city center across the access
// network and return in the evening. The example compares every dynamic
// strategy against the best static server placement and prints where the
// servers follow the players.
//
// Run with:
//
//	go run ./examples/gaming [-n 300] [-rounds 720] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 300, "substrate network size")
	rounds := flag.Int("rounds", 720, "simulated rounds")
	lambda := flag.Int("lambda", 15, "rounds per commuter phase (λ)")
	seed := flag.Int64("seed", 3, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := gen.ErdosRenyi(*n, 0.01, gen.DefaultOptions(), rng)
	if err != nil {
		log.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		log.Fatal(err)
	}
	T := workload.TForSize(*n)
	seq, err := workload.CommuterStatic(env.Metric,
		workload.CommuterConfig{T: T, Lambda: *lambda}, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gaming workload: %s on %v (day = %d phases à %d rounds)\n\n",
		seq.Name(), g, T, *lambda)

	algorithms := []sim.Algorithm{
		online.NewONTH(),
		online.NewONBR(),
		online.NewONBRDynamic(),
		offline.NewOFFSTAT(seq),
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\ttotal\taccess\trunning\tmigration\tcreation\tpeak servers")
	var static, onth float64
	for _, alg := range algorithms {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%d\n",
			l.Algorithm, l.Total(), l.Totals.Access(), l.Totals.Run,
			l.Totals.Migration, l.Totals.Creation, l.MaxActive())
		switch alg.(type) {
		case *offline.OFFSTAT:
			static = l.Total()
		case *online.ONTH:
			onth = l.Total()
		}
	}
	w.Flush()

	fmt.Printf("\nONTH (online, no knowledge of the commute) costs %.2fx the "+
		"clairvoyant static optimum.\n", onth/static)
	fmt.Println("\nA day in the life of ONTH (servers per phase):")
	l, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		log.Fatal(err)
	}
	day := T * *lambda
	start := len(l.Rounds) - day
	if start < 0 {
		start = 0
	}
	for ph := 0; ph < T && start+ph**lambda < len(l.Rounds); ph++ {
		r := l.Rounds[start+ph**lambda]
		fmt.Printf("  phase %2d: %d active servers, %d cached, access cost %.0f\n",
			ph, r.Active, r.Inactive, r.Latency+r.Load)
	}
}
