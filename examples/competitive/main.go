// Competitive: measures empirical competitive ratios — the cost of each
// online strategy divided by the optimal offline cost on the same request
// sequence — on the small line networks where OPT's dynamic program is
// exact (the paper's Figure 11 methodology). It also shows the static
// OFFSTAT reference, i.e. the price of forgoing flexibility entirely.
//
// Run with:
//
//	go run ./examples/competitive [-n 5] [-rounds 200] [-runs 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 5, "line-network size (OPT is exponential in this)")
	k := flag.Int("k", 3, "server bound")
	rounds := flag.Int("rounds", 200, "rounds per run")
	runs := flag.Int("runs", 10, "independent runs to average")
	lambda := flag.Int("lambda", 10, "commuter phase length λ")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	type contender struct {
		label string
		make  func(seq *workload.Sequence, s int64) sim.Algorithm
	}
	contenders := []contender{
		{"ONTH", func(*workload.Sequence, int64) sim.Algorithm { return online.NewONTH() }},
		{"ONBR-fixed", func(*workload.Sequence, int64) sim.Algorithm { return online.NewONBR() }},
		{"ONSAMP", func(*workload.Sequence, int64) sim.Algorithm { return online.NewONSAMP() }},
		{"WFA", func(*workload.Sequence, int64) sim.Algorithm { return online.NewWFA() }},
		{"ONCONF", func(_ *workload.Sequence, s int64) sim.Algorithm {
			return online.NewONCONF(rand.New(rand.NewSource(s + 7)))
		}},
		{"OFFSTAT", func(seq *workload.Sequence, _ int64) sim.Algorithm { return offline.NewOFFSTAT(seq) }},
	}
	ratios := make(map[string][]float64)

	for run := 0; run < *runs; run++ {
		s := *seed + int64(run)*7919
		g, err := gen.Line(*n, gen.DefaultOptions(), rand.New(rand.NewSource(s)))
		if err != nil {
			log.Fatal(err)
		}
		env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
			cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20, MaxServers: *k})
		if err != nil {
			log.Fatal(err)
		}
		seq, err := workload.CommuterDynamic(env.Metric,
			workload.CommuterConfig{T: 4, Lambda: *lambda}, *rounds)
		if err != nil {
			log.Fatal(err)
		}
		lOpt, err := sim.Run(env, offline.NewOPT(seq), seq)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range contenders {
			l, err := sim.Run(env, c.make(seq, s), seq)
			if err != nil {
				log.Fatal(err)
			}
			ratios[c.label] = append(ratios[c.label], l.Total()/lOpt.Total())
		}
	}

	fmt.Printf("empirical competitive ratios vs OPT (line n=%d, k=%d, commuter dynamic, %d runs):\n\n",
		*n, *k, *runs)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tmean\tstddev\tworst run")
	for _, c := range contenders {
		s := stats.Summarize(ratios[c.label])
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\n", c.label, s.Mean, s.StdDev, s.Max)
	}
	w.Flush()
	fmt.Println("\nA ratio of 1.0 means the strategy matched the clairvoyant optimum.")
}
