// Benchmarks regenerating every figure and table of the paper's evaluation
// (scaled-down Quick set-up so a full -bench=. sweep stays tractable; run
// cmd/figures without -quick for the paper-scale numbers), plus
// micro-benchmarks of the hot paths: shortest paths, access-cost
// evaluation, candidate scoring, pool reconfiguration, and the OPT dynamic
// program.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1}
}

func benchFigure(b *testing.B, fn func(experiments.Options) (*trace.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure of the paper's evaluation section.

func BenchmarkFigure1(b *testing.B)  { benchFigure(b, experiments.Figure1) }
func BenchmarkFigure2(b *testing.B)  { benchFigure(b, experiments.Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchFigure(b, experiments.Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchFigure(b, experiments.Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchFigure(b, experiments.Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchFigure(b, experiments.Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, experiments.Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, experiments.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, experiments.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, experiments.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, experiments.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, experiments.Figure12) }
func BenchmarkFigure13(b *testing.B) { benchFigure(b, experiments.Figure13) }
func BenchmarkFigure14(b *testing.B) { benchFigure(b, experiments.Figure14) }
func BenchmarkFigure15(b *testing.B) { benchFigure(b, experiments.Figure15) }
func BenchmarkFigure16(b *testing.B) { benchFigure(b, experiments.Figure16) }
func BenchmarkFigure17(b *testing.B) { benchFigure(b, experiments.Figure17) }
func BenchmarkFigure18(b *testing.B) { benchFigure(b, experiments.Figure18) }
func BenchmarkFigure19(b *testing.B) { benchFigure(b, experiments.Figure19) }

// BenchmarkTableRocketfuel regenerates the Section V closing experiment on
// the AS-7018-like topology.
func BenchmarkTableRocketfuel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableRocketfuel(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationQueue(b *testing.B)  { benchFigure(b, experiments.AblationQueue) }
func BenchmarkAblationExpiry(b *testing.B) { benchFigure(b, experiments.AblationExpiry) }
func BenchmarkAblationY(b *testing.B)      { benchFigure(b, experiments.AblationY) }
func BenchmarkAblationTheta(b *testing.B)  { benchFigure(b, experiments.AblationTheta) }
func BenchmarkAblationLoad(b *testing.B)   { benchFigure(b, experiments.AblationLoad) }
func BenchmarkAblationAssign(b *testing.B) { benchFigure(b, experiments.AblationAssign) }

// BenchmarkCompareOnlineVariants pits every online strategy (including the
// sampling, clustering and work-function variants) against OPT.
func BenchmarkCompareOnlineVariants(b *testing.B) {
	benchFigure(b, experiments.CompareOnlineVariants)
}

// BenchmarkFigureRunnerLocal builds one figure spec and executes its full
// cell grid through the declarative runner's bounded Local pool — the
// scheduling path every figure family now shares (spec construction, cell
// fan-out, grid collection, reduction).
func BenchmarkFigureRunnerLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := experiments.NewSpec("13", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(spec, runner.Local{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the library's hot paths.

func benchGraph(b *testing.B, n int) *sim.Env {
	b.Helper()
	g, err := gen.ErdosRenyi(n, 0.02, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

func BenchmarkAllPairs500(b *testing.B) {
	g, err := gen.ErdosRenyi(500, 0.01, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairs()
	}
}

// benchSubstrate is the shared small-world substrate of the metric-backend
// benchmarks: large enough (5000 nodes) that one Dijkstra row is real work,
// small enough that the cold-row benchmark stays fast.
func benchSubstrate(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.SmallWorld(5000, 1250, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSparseRowCold measures the cache-miss path of the sparse metric
// backend: a capacity-1 cache with a rotating source makes every Row call
// run a fresh Dijkstra plus the LRU bookkeeping.
func BenchmarkSparseRowCold(b *testing.B) {
	g := benchSubstrate(b)
	s := graph.NewSparse(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Row(i % 64)
	}
}

// BenchmarkSparseRowWarm measures the cache-hit path: the same source every
// time, so the cost is the lock, the map lookup, and the LRU touch.
func BenchmarkSparseRowWarm(b *testing.B) {
	g := benchSubstrate(b)
	s := graph.NewSparse(g, graph.DefaultSparseRows)
	s.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Row(0)
	}
}

// BenchmarkLandmarkDist measures one triangle-bound query against a built
// 16-landmark table (the build itself runs once, outside the timer).
func BenchmarkLandmarkDist(b *testing.B) {
	g := benchSubstrate(b)
	l := graph.NewLandmark(g, graph.DefaultLandmarks)
	l.Dist(0, 1) // force the table build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Dist(i%5000, (i*7+13)%5000)
	}
}

// BenchmarkSmallWorldConstruct100k measures building the 10⁵-node substrate
// the sparse/landmark backends exist for — O(n + chords), no all-pairs
// materialization anywhere.
func BenchmarkSmallWorldConstruct100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.SmallWorld(100000, 25000, gen.DefaultOptions(), rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessLinear(b *testing.B) {
	env := benchGraph(b, 300)
	rng := rand.New(rand.NewSource(2))
	list := make([]int, 128)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	d := cost.DemandFromList(list)
	servers := []int{10, 50, 100, 150, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Eval.Access(servers, d)
	}
}

func BenchmarkAccessQuadratic(b *testing.B) {
	g, err := gen.ErdosRenyi(300, 0.02, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Quadratic{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	list := make([]int, 128)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	d := cost.DemandFromList(list)
	servers := []int{10, 50, 100, 150, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Eval.Access(servers, d)
	}
}

func BenchmarkScorerSweep(b *testing.B) {
	env := benchGraph(b, 300)
	rng := rand.New(rand.NewSource(3))
	list := make([]int, 128)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	d := cost.DemandFromList(list)
	servers := []int{10, 50, 100, 150, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, ok := cost.NewScorer(env.Eval, servers, d)
		if !ok {
			b.Fatal("no scorer")
		}
		// A full single-change sweep: every move of every server.
		for si := range servers {
			for v := 0; v < 300; v += 7 {
				sc.Move(si, v)
			}
		}
	}
}

// BenchmarkScorerSweepReuse is BenchmarkScorerSweep with the scorer
// released back to the pool each iteration, the steady-state pattern of
// the epoch algorithms (allocation-free construction).
func BenchmarkScorerSweepReuse(b *testing.B) {
	env := benchGraph(b, 300)
	rng := rand.New(rand.NewSource(3))
	list := make([]int, 128)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	d := cost.DemandFromList(list)
	servers := []int{10, 50, 100, 150, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, ok := cost.NewScorer(env.Eval, servers, d)
		if !ok {
			b.Fatal("no scorer")
		}
		for si := range servers {
			for v := 0; v < 300; v += 7 {
				sc.Move(si, v)
			}
		}
		sc.Release()
	}
}

// BenchmarkScorerApplyMove measures the incremental commit operation the
// greedy loops use instead of rebuilding the scorer.
func BenchmarkScorerApplyMove(b *testing.B) {
	env := benchGraph(b, 300)
	rng := rand.New(rand.NewSource(5))
	list := make([]int, 128)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	d := cost.DemandFromList(list)
	sc, ok := cost.NewScorer(env.Eval, []int{10, 50, 100, 150, 200}, d)
	if !ok {
		b.Fatal("no scorer")
	}
	defer sc.Release()
	spots := []int{20, 60, 110, 160, 210, 10, 50, 100, 150, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.ApplyMove(i%5, spots[i%len(spots)])
	}
}

// BenchmarkBestResponse measures one full epoch sweep (moves,
// deactivations, additions over all nodes) through the parallel
// shape-priced candidate scan.
func BenchmarkBestResponse(b *testing.B) {
	env := benchGraph(b, 300)
	rng := rand.New(rand.NewSource(6))
	list := make([]int, 256)
	for i := range list {
		list[i] = rng.Intn(300)
	}
	agg := cost.DemandFromList(list)
	pool := env.NewPool()
	pool.Bootstrap(core.NewPlacement(10, 50, 100, 150, 200))
	moves := online.SearchMoves{Move: true, Deactivate: true, Add: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		online.BestResponse(env, pool, agg, 12, moves)
	}
}

// BenchmarkONCONF runs the generic configuration-counter algorithm on an
// enumerable configuration space (n=12, k≤5 → 1585 placements): every
// round charges every configuration, the workload the batched ConfSweep
// kernel exists for.
func BenchmarkONCONF(b *testing.B) {
	g, err := gen.ErdosRenyi(12, 0.3, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20, MaxServers: 5})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 8}, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, online.NewONCONF(rand.New(rand.NewSource(2))), seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWFA runs the work-function baseline on n=12, k≤3 (298 states):
// per round one task-cost evaluation per state plus the O(states²) work
// function update.
func BenchmarkWFA(b *testing.B) {
	g, err := gen.ErdosRenyi(12, 0.3, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20, MaxServers: 3})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 8}, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, online.NewWFA(), seq); err != nil {
			b.Fatal(err)
		}
	}
}

// largeSpaceEnv is the shared set-up of the large-space benchmarks: n=64,
// k≤4 is a 679120-state configuration space — more than 10× the default
// MaxONCONFConfigs bound, and intractable for the removed dense O(C²)
// path (whose distance matrix alone would have needed ≈3.4 TiB).
func largeSpaceEnv(b *testing.B) (*sim.Env, *workload.Sequence) {
	b.Helper()
	g, err := gen.ErdosRenyi(64, 0.1, gen.DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20, MaxServers: 4})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 8}, 32)
	if err != nil {
		b.Fatal(err)
	}
	return env, seq
}

// BenchmarkWFALargeSpace measures one work-function round on the
// 679120-state space: the batched task-cost sweep plus the hierarchically
// pruned move rule and work-function update. Enumeration, clustering, and
// the sweep layout happen once outside the timer.
func BenchmarkWFALargeSpace(b *testing.B) {
	env, seq := largeSpaceEnv(b)
	a := online.NewWFA()
	a.MaxConfigs = 1 << 20
	if err := a.Reset(env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Observe(i, seq.Demand(i%seq.Len()), cost.AccessCost{})
	}
	configs, clusters, _ := a.Stats()
	b.ReportMetric(float64(configs), "configs")
	b.ReportMetric(float64(clusters), "clusters")
}

// BenchmarkONCONFLargeSpace measures one counter round on the same
// 679120-state space: the batched sweep plus the cluster-fanned charge
// pass.
func BenchmarkONCONFLargeSpace(b *testing.B) {
	env, seq := largeSpaceEnv(b)
	a := online.NewONCONF(rand.New(rand.NewSource(2)))
	a.MaxConfigs = 1 << 20
	if err := a.Reset(env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Observe(i, seq.Demand(i%seq.Len()), cost.AccessCost{})
	}
}

// BenchmarkLookaheadOFFBR runs the offline best-response strategy whose
// epoch boundaries trigger lookahead window scans over the upcoming
// rounds (the path the per-epoch round-cost memo accelerates).
func BenchmarkLookaheadOFFBR(b *testing.B) {
	env := benchGraph(b, 200)
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(200), Lambda: 10}, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, offline.NewOFFBR(seq), seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlashCrowdGen builds the flash-crowd scenario end to end
// (background noise draws plus spike composition through the scenario
// engine's operator chain).
func BenchmarkFlashCrowdGen(b *testing.B) {
	env := benchGraph(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := workload.FlashCrowd(env.Metric, workload.FlashCrowdConfig{
			BaseRequests: 8, Spikes: 4, Peak: 32, Tau: 20,
		}, 300, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiurnalGen builds the diurnal multi-region scenario end to end
// (k-centers partition plus per-region phase-shifted generator stacks).
func BenchmarkDiurnalGen(b *testing.B) {
	env := benchGraph(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := workload.DiurnalMultiRegion(env.Metric, workload.DiurnalConfig{
			Regions: 4, Period: 80, HotShare: 0.5,
		}, 300, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookaheadReuseOFFBR measures the full driver+lookahead path on
// a stable workload whose epochs mostly keep their placement — the case
// the sim.AccessReuser hook deduplicates.
func BenchmarkLookaheadReuseOFFBR(b *testing.B) {
	env := benchGraph(b, 200)
	seq, err := workload.TimeZones(env.Metric,
		workload.TimeZonesConfig{T: 5, P: 0.5, Lambda: 20}, 300, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, offline.NewOFFBR(seq), seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolSwitch(b *testing.B) {
	pool := core.NewPool(core.Params{Costs: cost.DefaultParams(), QueueCap: 3, Expiry: 20})
	pool.Bootstrap(core.NewPlacement(1, 2, 3))
	targets := []core.Placement{
		core.NewPlacement(1, 2, 4),
		core.NewPlacement(1, 2, 3),
		core.NewPlacement(2, 3),
		core.NewPlacement(2, 3, 5, 7),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.SwitchTo(targets[i%len(targets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPTLine5(b *testing.B) {
	g, err := gen.Line(5, gen.DefaultOptions(), rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		b.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 10}, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := offline.NewOPT(seq)
		if err := opt.Reset(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkONTHCommuter(b *testing.B) {
	env := benchGraph(b, 200)
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(200), Lambda: 10}, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, online.NewONTH(), seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkONBRCommuter(b *testing.B) {
	env := benchGraph(b, 200)
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(200), Lambda: 10}, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(env, online.NewONBR(), seq); err != nil {
			b.Fatal(err)
		}
	}
}
