# Convenience entry points; CI runs the same commands (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt + go vet + the repo's own repcheck analyzers (ANALYSIS.md).
lint:
	bash scripts/lint.sh

# Hot-path benchmark snapshot with delta vs the previous PR's baseline.
bench:
	bash scripts/bench.sh
